// Package server is the SpeedyBox control plane: a long-running daemon
// owning one engine and its execution platform, exposing an HTTP/JSON
// admin API for live chain reconfiguration (PR "plan"), durability
// (checkpoint/restore over the WAL subsystem) and lifecycle control
// (drain/undrain), alongside the observability endpoints (/metrics,
// /statusz, /debug/pprof) on the same listener.
//
// Lifecycle is a one-way state machine with a single reversible edge:
//
//	Starting ──Start──▶ Serving ◀──undrain──┐
//	    │                  │ drain          │
//	    │                  ▼                │
//	    │               Draining ───────────┘
//	    │                  │ Shutdown
//	    └──────────────────▼
//	                    Stopped
//
// Admin operations serialize on one mutex; the data path never takes
// it. Draining closes the traffic pump's window gate, which quiesces
// the multi-queue workers at a packet boundary — the precondition both
// Engine.Checkpoint and Engine.Restore state. Every API failure is
// rendered as {"code","message"} where code is a registered
// errcode.Code, so clients assert machine-readable codes, never
// message strings.
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fastpathnfv/speedybox/internal/bess"
	"github.com/fastpathnfv/speedybox/internal/chainspec"
	"github.com/fastpathnfv/speedybox/internal/cluster"
	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/errcode"
	"github.com/fastpathnfv/speedybox/internal/onvm"
	"github.com/fastpathnfv/speedybox/internal/platform"
	"github.com/fastpathnfv/speedybox/internal/telemetry"
	"github.com/fastpathnfv/speedybox/internal/topo"
	"github.com/fastpathnfv/speedybox/internal/wal"
)

// State is the daemon's lifecycle position.
type State int32

const (
	// Starting: constructed, admin API up, no traffic flowing. The only
	// state that accepts a boot-time restore besides Draining.
	Starting State = iota
	// Serving: traffic pump running, all admin operations accepted.
	Serving
	// Draining: pump gated at a packet boundary; checkpoint/restore
	// safe, plans still accepted (the engine's epoch machinery handles
	// them), undrain returns to Serving.
	Draining
	// Stopped: shutdown complete; every admin operation fails with
	// server.stopped.
	Stopped
)

// String names the state for /v1/status and logs.
func (s State) String() string {
	switch s {
	case Starting:
		return "starting"
	case Serving:
		return "serving"
	case Draining:
		return "draining"
	case Stopped:
		return "stopped"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// DefaultSpecJSON is the boot chain when no spec is configured: the
// paper's Chain 1 (MazuNAT → Maglev → Monitor → IPFilter) on the BESS
// model, with the NAT's internal prefix matching the trace generator's
// default source range so the built-in pump drops nothing.
const DefaultSpecJSON = `{
  "name": "chain1",
  "platform": "bess",
  "nfs": [
    {"type": "mazunat", "name": "mazunat",
     "internal_prefix": "10.0.0.0/8", "external_ip": "198.51.100.1"},
    {"type": "maglev", "name": "maglev", "backends": [
      {"name": "backend-a", "ip": "192.168.1.10", "port": 8080},
      {"name": "backend-b", "ip": "192.168.1.11", "port": 8080},
      {"name": "backend-c", "ip": "192.168.1.12", "port": 8080}
    ]},
    {"type": "monitor", "name": "monitor"},
    {"type": "ipfilter", "name": "ipfilter"}
  ]
}`

// Config configures a Daemon. The zero value is runnable: default
// chain, ephemeral port, in-memory WAL, pump on.
type Config struct {
	// Addr is the admin listen address ("127.0.0.1:0" default, which
	// makes tests race-free; Addr() reports the bound port).
	Addr string
	// SpecJSON is the boot chain spec (chainspec.Spec document); empty
	// selects DefaultSpecJSON.
	SpecJSON []byte
	// Workers is the multi-queue worker count (default 4).
	Workers int
	// BatchSize is the per-worker vector size (default
	// core.DefaultBatchSize).
	BatchSize int
	// Baseline disables SpeedyBox (original chain, no fast path).
	Baseline bool
	// WALGroupCommit is the records-per-sync batch (0 = WAL default).
	WALGroupCommit int
	// WALPath, when set, streams the durable WAL byte stream into that
	// file so the journal survives the process.
	WALPath string
	// CheckpointPath, when set, is the default target for POST
	// /v1/checkpoint and receives a final checkpoint during Shutdown.
	CheckpointPath string
	// RestoreFrom, when set, is a checkpoint file restored into the
	// fresh engine before traffic starts.
	RestoreFrom string
	// RestoreWAL, when set, is a journal file whose suffix past the
	// checkpoint's sequence is replayed after RestoreFrom.
	RestoreWAL string
	// Instances, when > 1, runs a fleet of that many engine instances
	// behind the consistent-hash flow steerer instead of a single
	// platform. POST /v1/cluster/scale resizes the fleet live;
	// /v1/status gains a per-instance rollup. Cluster mode requires the
	// bess platform and excludes WALPath/CheckpointPath/RestoreFrom
	// (per-instance durability is internal to the cluster).
	Instances int
	// MaxInstances bounds the autoscaling suggestion in /v1/status
	// (default 8). It does not bound POST /v1/cluster/scale, which the
	// cluster caps at its steering-table size.
	MaxInstances int
	// Pump configures the built-in traffic source.
	Pump PumpConfig
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if len(c.SpecJSON) == 0 {
		c.SpecJSON = []byte(DefaultSpecJSON)
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.BatchSize == 0 {
		c.BatchSize = core.DefaultBatchSize
	}
	if c.Instances == 0 {
		c.Instances = 1
	}
	if c.MaxInstances == 0 {
		c.MaxInstances = 8
	}
	return c
}

// Daemon is one engine + platform — or, in cluster mode, a fleet of
// engine instances behind the flow steerer — under an HTTP/JSON
// control plane.
type Daemon struct {
	cfg  Config
	hub  *telemetry.Hub
	plat platform.Platform    // nil in cluster mode
	mq   *platform.MultiQueue // nil in cluster mode
	// cl and clRun are set in cluster mode (Config.Instances > 1): the
	// engine fleet and the pump adapter driving it.
	cl    *cluster.Cluster
	clRun *clusterRunner
	walW  *wal.Writer
	walF  *os.File // WALPath sink, nil for in-memory logs

	// adminMu serializes every admin mutation (plan, checkpoint,
	// restore, drain, undrain, shutdown). The data path never takes it;
	// the engine's own reconfigMu discipline handles data-plane safety.
	adminMu sync.Mutex
	state   atomic.Int32
	pump    *pump
	started time.Time
	// stagedTopo is the last topology accepted by POST /v1/topo
	// (validated and dry-run built, awaiting deployment).
	stagedTopo *topo.Spec

	ln  net.Listener
	srv *http.Server
}

// New builds the daemon: chain from spec, platform, WAL, optional
// boot-time restore, multi-queue dispatcher, pump, and the admin
// listener (already serving when New returns, in state Starting).
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	spec, err := chainspec.Parse(cfg.SpecJSON)
	if err != nil {
		return nil, err
	}
	chain, err := spec.Build()
	if err != nil {
		return nil, err
	}

	hub := telemetry.NewHub()
	opts := core.DefaultOptions()
	if cfg.Baseline {
		opts = core.BaselineOptions()
	}
	opts.Telemetry = hub

	d := &Daemon{cfg: cfg, hub: hub, started: time.Now()}
	var sink trafficRunner
	if cfg.Instances > 1 {
		if spec.Platform == "onvm" {
			return nil, fmt.Errorf("%w: cluster mode requires the bess platform", cluster.ErrBadConfig)
		}
		if cfg.WALPath != "" || cfg.CheckpointPath != "" || cfg.RestoreFrom != "" {
			return nil, fmt.Errorf("%w: file durability options apply to single-instance mode", ErrClusterMode)
		}
		d.cl, err = cluster.New(cluster.Config{
			Chain: chain, Options: opts,
			Instances: cfg.Instances, Hub: hub, Durable: true,
		})
		if err != nil {
			return nil, err
		}
		d.clRun = &clusterRunner{cl: d.cl, workers: cfg.Workers, batch: cfg.BatchSize}
		sink = d.clRun
		// Durability in cluster mode is per-instance and internal to the
		// cluster; the daemon's own WAL writer stays unattached so
		// /v1/status reports zeros rather than panicking.
		d.walW = wal.NewWriter(wal.Options{})
	} else {
		var plat platform.Platform
		switch spec.Platform {
		case "onvm":
			plat, err = onvm.New(onvm.Config{Chain: chain, Options: opts})
		default:
			plat, err = bess.New(bess.Config{Chain: chain, Options: opts})
		}
		if err != nil {
			return nil, err
		}
		d.plat = plat
		eng := plat.Engine()

		// Restore precedes WAL attachment: replayed installs must not be
		// re-journaled into the fresh log, whose first records should be
		// post-boot mutations anchored by the next checkpoint.
		if cfg.RestoreFrom != "" {
			if err := d.restoreFromFiles(cfg.RestoreFrom, cfg.RestoreWAL); err != nil {
				plat.Close()
				return nil, err
			}
		}

		walOpts := wal.Options{GroupCommit: cfg.WALGroupCommit}
		if cfg.WALPath != "" {
			f, err := os.Create(cfg.WALPath)
			if err != nil {
				plat.Close()
				return nil, fmt.Errorf("%w: %w", ErrCheckpointIO, err)
			}
			d.walF = f
			walOpts.Sink = f
		}
		d.walW = wal.NewWriter(walOpts)
		eng.AttachWAL(d.walW)

		d.mq, err = platform.NewMultiQueue(plat, cfg.Workers)
		if err != nil {
			d.closeFiles()
			plat.Close()
			return nil, err
		}
		d.mq.SetBatchSize(cfg.BatchSize)
		sink = d.mq
	}

	if !cfg.Pump.Disable {
		d.pump, err = newPump(sink, cfg.Pump)
		if err != nil {
			d.closeFiles()
			d.closePlatform()
			return nil, err
		}
	}

	hub.Registry.GaugeFunc("speedybox_daemon_state",
		"Daemon lifecycle state (0=starting 1=serving 2=draining 3=stopped)",
		func() float64 { return float64(d.state.Load()) })
	hub.Registry.GaugeFunc("speedybox_daemon_uptime_seconds",
		"Seconds since the daemon was constructed",
		func() float64 { return time.Since(d.started).Seconds() })

	d.ln, err = net.Listen("tcp", cfg.Addr)
	if err != nil {
		d.closeFiles()
		d.closePlatform()
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	d.srv = &http.Server{Handler: d.handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = d.srv.Serve(d.ln) }()
	return d, nil
}

// Addr returns the bound admin address (usable with Addr ":0").
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// URL returns the admin base URL.
func (d *Daemon) URL() string { return "http://" + d.Addr() }

// State returns the current lifecycle state.
func (d *Daemon) State() State { return State(d.state.Load()) }

// Engine exposes the daemon's engine — instance 0's in cluster mode
// (tests and embedders).
func (d *Daemon) Engine() *core.Engine {
	if d.cl != nil {
		return d.cl.Engine(0)
	}
	return d.plat.Engine()
}

// Platform exposes the daemon's execution platform (nil in cluster
// mode; use Cluster).
func (d *Daemon) Platform() platform.Platform { return d.plat }

// Cluster exposes the engine fleet (nil when not clustered).
func (d *Daemon) Cluster() *cluster.Cluster { return d.cl }

// PlatformName names the execution platform, annotated with the live
// fleet size in cluster mode.
func (d *Daemon) PlatformName() string {
	if d.cl != nil {
		return fmt.Sprintf("bess[%d]", d.cl.Len())
	}
	return d.plat.Name()
}

// closePlatform releases whichever data plane the daemon owns.
func (d *Daemon) closePlatform() error {
	if d.cl != nil {
		return d.cl.Close()
	}
	return d.plat.Close()
}

// Hub exposes the daemon's telemetry hub.
func (d *Daemon) Hub() *telemetry.Hub { return d.hub }

// Start transitions Starting → Serving and opens the traffic pump.
func (d *Daemon) Start() error {
	d.adminMu.Lock()
	defer d.adminMu.Unlock()
	if State(d.state.Load()) != Starting {
		return fmt.Errorf("%w: Start from %s", ErrBadState, d.State())
	}
	d.state.Store(int32(Serving))
	if d.pump != nil {
		d.pump.start()
	}
	return nil
}

// Run starts the daemon and blocks until ctx is cancelled (typically
// by a signal), then shuts down gracefully: drain, final checkpoint,
// close. This is cmd/speedyboxd's main loop.
func (d *Daemon) Run(ctx context.Context) error {
	if err := d.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return d.Shutdown(sctx)
}

// Shutdown drains traffic, takes a final checkpoint (when
// CheckpointPath is configured), syncs and closes the WAL sink, stops
// the admin server and releases the platform. Idempotent.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.adminMu.Lock()
	defer d.adminMu.Unlock()
	if State(d.state.Load()) == Stopped {
		return nil
	}
	if d.pump != nil {
		d.pump.stop()
	}
	d.state.Store(int32(Draining))

	var firstErr error
	if d.cfg.CheckpointPath != "" {
		if _, _, err := d.saveCheckpoint(d.cfg.CheckpointPath); err != nil {
			firstErr = err
		}
	}
	d.walW.Sync()
	if err := d.closeFiles(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := d.srv.Shutdown(ctx); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := d.closePlatform(); err != nil && firstErr == nil {
		firstErr = err
	}
	d.state.Store(int32(Stopped))
	return firstErr
}

// saveCheckpoint quiesces nothing itself — callers hold adminMu and
// have gated the pump — then snapshots the engine and writes the
// encoded checkpoint to path.
func (d *Daemon) saveCheckpoint(path string) (*wal.Checkpoint, int, error) {
	cp, err := d.plat.Engine().Checkpoint()
	if err != nil {
		return nil, 0, err
	}
	data := cp.Encode()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrCheckpointIO, err)
	}
	return cp, len(data), nil
}

// restoreFromFiles loads a checkpoint file (and optional journal file)
// into the fresh engine at boot.
func (d *Daemon) restoreFromFiles(cpPath, walPath string) error {
	data, err := os.ReadFile(cpPath)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpointIO, err)
	}
	cp, err := wal.DecodeCheckpoint(data)
	if err != nil {
		return err
	}
	var walData []byte
	if walPath != "" {
		walData, err = os.ReadFile(walPath)
		if err != nil {
			return fmt.Errorf("%w: %w", ErrCheckpointIO, err)
		}
	}
	return d.plat.Engine().Restore(cp, walData)
}

func (d *Daemon) closeFiles() error {
	if d.walF == nil {
		return nil
	}
	f := d.walF
	d.walF = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpointIO, err)
	}
	return nil
}

// guard rejects admin mutations once shutdown has completed.
func (d *Daemon) guard() error {
	if State(d.state.Load()) == Stopped {
		return ErrStopped
	}
	return nil
}

// Codes returns the full registered error-code catalog — the payload
// behind GET /v1/errors.
func Codes() []errcode.Registration { return errcode.All() }
