package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"github.com/fastpathnfv/speedybox/internal/cluster"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/platform"
)

// Autoscale advice thresholds over the mean per-worker queue depth of
// the last pump window. Between them the suggestion is "stay"; the
// daemon only ever reports the suggestion (via /v1/status), it never
// resizes the fleet on its own.
const (
	scaleDownDepth = 64
	scaleUpDepth   = 1024
)

// clusterRunner adapts the cluster's worker-partitioned Run to the
// pump's trafficRunner shape and remembers the last window's per-worker
// queue depths — the signal behind the autoscaling suggestion.
type clusterRunner struct {
	cl      *cluster.Cluster
	workers int
	batch   int
	depths  atomic.Pointer[[]int]
}

func (cr *clusterRunner) Run(pkts []*packet.Packet) (*platform.RunResult, error) {
	res, err := cr.cl.Run(pkts, cr.workers, cr.batch)
	if res != nil {
		d := append([]int(nil), res.QueueDepths...)
		cr.depths.Store(&d)
	}
	return res, err
}

// lastDepths returns the most recent window's per-worker queue depths
// (nil before the first window).
func (cr *clusterRunner) lastDepths() []int {
	if p := cr.depths.Load(); p != nil {
		return *p
	}
	return nil
}

// clusterScaleRequest asks the fleet to resize to a target instance
// count; the rebalances run live against flowing traffic.
type clusterScaleRequest struct {
	Instances int `json:"instances"`
}

// clusterScaleResponse reports the fleet after the resize, in the same
// shape the /v1/status cluster section uses.
type clusterScaleResponse struct {
	Instances  []cluster.InstanceStatus `json:"instances"`
	Migrations uint64                   `json:"migrations_total"`
	Rebalances uint64                   `json:"rebalances_total"`
	Aborts     uint64                   `json:"migration_aborts_total"`
}

// handleClusterScale resizes the engine fleet one rebalance at a time.
// The pump is deliberately NOT paused: live migration under traffic is
// the operation's contract — packets racing a rebalance buffer at the
// instances' drain gates and re-route, so the resize drops nothing.
func (d *Daemon) handleClusterScale(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req clusterScaleRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, fmt.Errorf("%w: %w", ErrBadRequest, err))
			return
		}
	}
	if req.Instances == 0 {
		writeError(w, fmt.Errorf("%w: scale needs a target instance count", ErrBadRequest))
		return
	}
	d.adminMu.Lock()
	defer d.adminMu.Unlock()
	if err := d.guard(); err != nil {
		writeError(w, err)
		return
	}
	if d.cl == nil {
		writeError(w, fmt.Errorf("%w: start with -instances > 1", ErrNotClustered))
		return
	}
	if err := d.cl.ScaleTo(req.Instances); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, clusterScaleResponse{
		Instances:  d.cl.Instances(),
		Migrations: d.cl.Migrations(),
		Rebalances: d.cl.Rebalances(),
		Aborts:     d.cl.Aborts(),
	})
}

// statusCluster is the /v1/status cluster section: the per-instance
// rollup plus fleet counters and the autoscaling suggestion.
type statusCluster struct {
	Instances          []cluster.InstanceStatus `json:"instances"`
	Migrations         uint64                   `json:"migrations_total"`
	Rebalances         uint64                   `json:"rebalances_total"`
	MigrationAborts    uint64                   `json:"migration_aborts_total"`
	SuggestedInstances int                      `json:"suggested_instances"`
}

// clusterStatus assembles the cluster section (nil when not clustered).
func (d *Daemon) clusterStatus() *statusCluster {
	if d.cl == nil {
		return nil
	}
	return &statusCluster{
		Instances:       d.cl.Instances(),
		Migrations:      d.cl.Migrations(),
		Rebalances:      d.cl.Rebalances(),
		MigrationAborts: d.cl.Aborts(),
		SuggestedInstances: cluster.AdviseInstances(
			d.cl.Len(), 1, d.cfg.MaxInstances,
			d.clRun.lastDepths(), scaleDownDepth, scaleUpDepth),
	}
}
