package server

import (
	"fmt"
	"net/http"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/topo"
)

// topoChainSummary is one chain of a staged topology.
type topoChainSummary struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	NFs    int    `json:"nfs"`
}

// topoResponse describes the staged topology. POST returns it after
// validation; GET returns the currently staged document (Staged false
// when none has been accepted yet).
type topoResponse struct {
	Staged   bool               `json:"staged"`
	Name     string             `json:"name,omitempty"`
	Chains   []topoChainSummary `json:"chains,omitempty"`
	Policies int                `json:"policies,omitempty"`
	Tenants  int                `json:"tenants,omitempty"`
}

// handleTopo validates and stages a multi-chain topology spec.
//
// POST parses the document, dry-run builds it (so unknown NF types and
// bad per-NF parameters are rejected with their topo.*/chainspec.*
// codes, not discovered at deploy time) and stages it on the daemon;
// each POST replaces the previous staged document. GET reports the
// staged topology. The daemon's own data path keeps running its single
// boot chain — staging is the control-plane half of a topology rollout;
// cmd/chainsim -topo and the library's BuildTopology consume the same
// document for execution.
func (d *Daemon) handleTopo(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		d.adminMu.Lock()
		spec := d.stagedTopo
		d.adminMu.Unlock()
		writeJSON(w, topoSummary(spec))
	case http.MethodPost:
		body, err := readBody(w, r)
		if err != nil {
			writeError(w, err)
			return
		}
		d.adminMu.Lock()
		defer d.adminMu.Unlock()
		if err := d.guard(); err != nil {
			writeError(w, err)
			return
		}
		spec, err := topo.Parse(body)
		if err != nil {
			writeError(w, err)
			return
		}
		// Dry-run build: instantiates every NF so spec-level validity
		// extends to NF construction, then discards the topology.
		tp, err := topo.Build(spec, topo.BuildConfig{Options: core.BaselineOptions()})
		if err != nil {
			writeError(w, err)
			return
		}
		if err := tp.Close(); err != nil {
			writeError(w, err)
			return
		}
		d.stagedTopo = spec
		writeJSON(w, topoSummary(spec))
	default:
		writeError(w, fmt.Errorf("%w: %s %s", ErrMethodNotAllowed, r.Method, r.URL.Path))
	}
}

// topoSummary renders the staged-topology view of a spec (nil = none).
func topoSummary(spec *topo.Spec) topoResponse {
	if spec == nil {
		return topoResponse{}
	}
	resp := topoResponse{
		Staged:   true,
		Name:     spec.Name,
		Policies: len(spec.Policies),
		Tenants:  len(spec.Tenants),
	}
	for _, c := range spec.Chains {
		weight := c.Weight
		if weight == 0 {
			weight = 1
		}
		resp.Chains = append(resp.Chains, topoChainSummary{
			Name: c.Name, Weight: weight, NFs: len(c.NFs),
		})
	}
	return resp
}
