package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/fastpathnfv/speedybox/internal/chainspec"
	"github.com/fastpathnfv/speedybox/internal/errcode"
	"github.com/fastpathnfv/speedybox/internal/platform"
	"github.com/fastpathnfv/speedybox/internal/telemetry"
	"github.com/fastpathnfv/speedybox/internal/wal"
)

// maxBodyBytes bounds admin request bodies. Plans are a few hundred
// bytes; inline checkpoint restores dominate, and a megabyte covers
// any table this model holds.
const maxBodyBytes = 8 << 20

// handler assembles the admin mux: the /v1 control API plus the
// observability endpoints on the same listener.
func (d *Daemon) handler() http.Handler {
	mux := http.NewServeMux()
	obs := telemetry.Handler(d.hub)
	mux.Handle("/metrics", obs)
	mux.Handle("/statusz", obs)
	mux.Handle("/debug/pprof/", obs)
	mux.HandleFunc("/v1/plan", d.handlePlan)
	mux.HandleFunc("/v1/topo", d.handleTopo)
	mux.HandleFunc("/v1/checkpoint", d.handleCheckpoint)
	mux.HandleFunc("/v1/restore", d.handleRestore)
	mux.HandleFunc("/v1/cluster/scale", d.handleClusterScale)
	mux.HandleFunc("/v1/drain", d.handleDrain)
	mux.HandleFunc("/v1/undrain", d.handleUndrain)
	mux.HandleFunc("/v1/status", d.handleStatus)
	mux.HandleFunc("/v1/errors", d.handleErrors)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, fmt.Errorf("%w: %s", ErrNotFound, r.URL.Path))
	})
	return mux
}

// readBody drains a size-capped request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, fmt.Errorf("%w: limit %d bytes", ErrBodyTooLarge, mbe.Limit)
		}
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	return body, nil
}

func post(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeError(w, fmt.Errorf("%w: %s %s", ErrMethodNotAllowed, r.Method, r.URL.Path))
		return false
	}
	return true
}

func get(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeError(w, fmt.Errorf("%w: %s %s", ErrMethodNotAllowed, r.Method, r.URL.Path))
		return false
	}
	return true
}

// planResponse reports a completed live reconfiguration.
type planResponse struct {
	Epoch uint64   `json:"epoch"`
	Chain []string `json:"chain"`
}

// handlePlan applies a chainspec.ChainPlan document to the running
// chain via the platform's live-reconfiguration path. Traffic keeps
// flowing: the engine's epoch machinery invalidates consolidated rules
// and in-flight batch workers fall back to the slow path, so no pump
// quiesce is needed or taken.
func (d *Daemon) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	d.adminMu.Lock()
	defer d.adminMu.Unlock()
	if err := d.guard(); err != nil {
		writeError(w, err)
		return
	}
	plan, err := chainspec.ParsePlan(body)
	if err != nil {
		writeError(w, err)
		return
	}
	eng := d.Engine()
	compiled, err := plan.Compile(eng.ChainNames())
	if err != nil {
		writeError(w, err)
		return
	}
	if d.cl != nil {
		// Cluster mode: the plan commits fleet-wide at a common packet
		// boundary or not at all.
		if err := d.cl.Reconfigure(compiled); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, planResponse{Epoch: eng.Epoch(), Chain: eng.ChainNames()})
		return
	}
	rec, ok := d.plat.(platform.Reconfigurer)
	if !ok {
		writeError(w, fmt.Errorf("%w: %s", ErrNotReconfigurable, d.plat.Name()))
		return
	}
	if err := rec.Reconfigure(compiled); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, planResponse{Epoch: eng.Epoch(), Chain: eng.ChainNames()})
}

// checkpointRequest selects the checkpoint destination: a file path
// (default Config.CheckpointPath) and/or the encoded bytes inline.
type checkpointRequest struct {
	Path   string `json:"path,omitempty"`
	Inline bool   `json:"inline,omitempty"`
}

type checkpointResponse struct {
	Epoch  uint64 `json:"epoch"`
	WALSeq uint64 `json:"wal_seq"`
	Bytes  int    `json:"bytes"`
	Path   string `json:"path,omitempty"`
	// Checkpoint is the base64-encoded snapshot when inline was
	// requested — what POST /v1/restore accepts back.
	Checkpoint string `json:"checkpoint,omitempty"`
	// WAL is the base64-encoded durable journal when inline was
	// requested, replayable past the checkpoint on restore.
	WAL string `json:"wal,omitempty"`
}

// handleCheckpoint snapshots the engine at a packet boundary. When the
// daemon is serving, the pump is gated for the duration — the window in
// flight drains, the snapshot is taken, the gate reopens.
func (d *Daemon) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req checkpointRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, fmt.Errorf("%w: %w", ErrBadRequest, err))
			return
		}
	}
	d.adminMu.Lock()
	defer d.adminMu.Unlock()
	if err := d.guard(); err != nil {
		writeError(w, err)
		return
	}
	if d.cl != nil {
		writeError(w, fmt.Errorf("%w: per-instance checkpoints are internal to the cluster", ErrClusterMode))
		return
	}

	if d.pump != nil && State(d.state.Load()) == Serving {
		d.pump.pause()
		defer d.pump.resume()
	}

	eng := d.plat.Engine()
	var cp *wal.Checkpoint
	path := req.Path
	if path == "" {
		path = d.cfg.CheckpointPath
	}
	if path != "" {
		cp, _, err = d.saveCheckpoint(path)
	} else {
		cp, err = eng.Checkpoint()
		// No destination anywhere: the bytes must travel inline or the
		// snapshot would be unreachable.
		req.Inline = true
	}
	if err != nil {
		writeError(w, err)
		return
	}
	data := cp.Encode()
	resp := checkpointResponse{
		Epoch:  cp.Epoch,
		WALSeq: cp.WALSeq,
		Bytes:  len(data),
		Path:   path,
	}
	if req.Inline {
		resp.Checkpoint = base64.StdEncoding.EncodeToString(data)
		resp.WAL = base64.StdEncoding.EncodeToString(d.walW.DurableBytes())
	}
	writeJSON(w, resp)
}

// restoreRequest carries the snapshot to load: inline base64 fields
// (as returned by an inline checkpoint) or file paths.
type restoreRequest struct {
	Checkpoint     string `json:"checkpoint,omitempty"`
	WAL            string `json:"wal,omitempty"`
	CheckpointPath string `json:"checkpoint_path,omitempty"`
	WALPath        string `json:"wal_path,omitempty"`
}

type restoreResponse struct {
	Epoch uint64   `json:"epoch"`
	Flows int      `json:"flows"`
	Rules int      `json:"rules"`
	Chain []string `json:"chain"`
}

// handleRestore loads a checkpoint (plus optional journal suffix) into
// the engine. Only legal while no traffic is flowing — Starting or
// Draining — mirroring Engine.Restore's fresh-engine precondition.
func (d *Daemon) handleRestore(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req restoreRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, fmt.Errorf("%w: %w", ErrBadRequest, err))
			return
		}
	}
	d.adminMu.Lock()
	defer d.adminMu.Unlock()
	if err := d.guard(); err != nil {
		writeError(w, err)
		return
	}
	if d.cl != nil {
		writeError(w, fmt.Errorf("%w: crash-restore is internal to the cluster", ErrClusterMode))
		return
	}
	if st := State(d.state.Load()); st != Starting && st != Draining {
		writeError(w, fmt.Errorf("%w: restore while %s (drain first)", ErrBadState, st))
		return
	}

	var cpData, walData []byte
	switch {
	case req.Checkpoint != "":
		cpData, err = base64.StdEncoding.DecodeString(req.Checkpoint)
		if err != nil {
			writeError(w, fmt.Errorf("%w: checkpoint: %w", ErrBadRequest, err))
			return
		}
		if req.WAL != "" {
			walData, err = base64.StdEncoding.DecodeString(req.WAL)
			if err != nil {
				writeError(w, fmt.Errorf("%w: wal: %w", ErrBadRequest, err))
				return
			}
		}
	case req.CheckpointPath != "":
		cpData, err = readRestoreFile(req.CheckpointPath)
		if err != nil {
			writeError(w, err)
			return
		}
		if req.WALPath != "" {
			walData, err = readRestoreFile(req.WALPath)
			if err != nil {
				writeError(w, err)
				return
			}
		}
	default:
		writeError(w, fmt.Errorf("%w: restore needs a checkpoint or checkpoint_path", ErrBadRequest))
		return
	}

	cp, err := wal.DecodeCheckpoint(cpData)
	if err != nil {
		writeError(w, err)
		return
	}
	eng := d.plat.Engine()
	if err := eng.Restore(cp, walData); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, restoreResponse{
		Epoch: eng.Epoch(),
		Flows: len(cp.Flows),
		Rules: len(cp.Rules),
		Chain: eng.ChainNames(),
	})
}

type stateResponse struct {
	State string `json:"state"`
}

// handleDrain gates the pump at a packet boundary and enters Draining.
// Idempotent from Draining.
func (d *Daemon) handleDrain(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	d.adminMu.Lock()
	defer d.adminMu.Unlock()
	if err := d.guard(); err != nil {
		writeError(w, err)
		return
	}
	switch State(d.state.Load()) {
	case Serving:
		if d.pump != nil {
			d.pump.pause()
		}
		d.state.Store(int32(Draining))
	case Draining:
		// already drained
	default:
		writeError(w, fmt.Errorf("%w: drain while %s", ErrBadState, d.State()))
		return
	}
	writeJSON(w, stateResponse{State: d.State().String()})
}

// handleUndrain reopens the pump gate and returns to Serving.
// Idempotent from Serving.
func (d *Daemon) handleUndrain(w http.ResponseWriter, r *http.Request) {
	if !post(w, r) {
		return
	}
	d.adminMu.Lock()
	defer d.adminMu.Unlock()
	if err := d.guard(); err != nil {
		writeError(w, err)
		return
	}
	switch State(d.state.Load()) {
	case Draining:
		d.state.Store(int32(Serving))
		if d.pump != nil {
			d.pump.resume()
		}
	case Serving:
		// already serving
	default:
		writeError(w, fmt.Errorf("%w: undrain while %s", ErrBadState, d.State()))
		return
	}
	writeJSON(w, stateResponse{State: d.State().String()})
}

type statusStats struct {
	Packets           uint64 `json:"packets"`
	FastPath          uint64 `json:"fast_path"`
	SlowPath          uint64 `json:"slow_path"`
	Dropped           uint64 `json:"dropped"`
	Consolidations    uint64 `json:"consolidations"`
	EventsFired       uint64 `json:"events_fired"`
	SlowPathFallbacks uint64 `json:"slow_path_fallbacks"`
	DegradedPackets   uint64 `json:"degraded_packets"`
	FaultRecoveries   uint64 `json:"fault_recoveries"`
}

type statusWAL struct {
	DurableBytes int    `json:"durable_bytes"`
	Size         int    `json:"size"`
	Seq          uint64 `json:"seq"`
	Syncs        uint64 `json:"syncs"`
}

type statusCheckpoint struct {
	// AgeSeconds is -1 before the first checkpoint.
	AgeSeconds float64 `json:"age_seconds"`
	LastUnix   int64   `json:"last_unix,omitempty"`
}

type statusWorker struct {
	Worker     int     `json:"worker"`
	QueueDepth float64 `json:"queue_depth"`
	Packets    uint64  `json:"packets"`
}

type statusPump struct {
	Enabled bool   `json:"enabled"`
	Paused  bool   `json:"paused"`
	Windows uint64 `json:"windows"`
	Packets uint64 `json:"packets"`
	Drops   uint64 `json:"drops"`
	Error   string `json:"error,omitempty"`
}

type statusResponse struct {
	State         string           `json:"state"`
	Platform      string           `json:"platform"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Epoch         uint64           `json:"epoch"`
	Chain         []string         `json:"chain"`
	DegradedFlows int              `json:"degraded_flows"`
	Stats         statusStats      `json:"stats"`
	WAL           statusWAL        `json:"wal"`
	Checkpoint    statusCheckpoint `json:"checkpoint"`
	Workers       []statusWorker   `json:"workers"`
	Pump          statusPump       `json:"pump"`
	// Cluster is the per-instance rollup, fleet counters and autoscale
	// suggestion; present only in cluster mode.
	Cluster *statusCluster `json:"cluster,omitempty"`
}

// handleStatus reports the daemon's full control-plane view: lifecycle
// state, chain and epoch, engine counters, WAL durability position,
// checkpoint age and the per-worker queue gauges. In cluster mode the
// stats aggregate the whole fleet (including retired instances, so
// counters stay monotonic across scale-in) and a cluster section adds
// the per-instance rollup.
func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !get(w, r) {
		return
	}
	eng := d.Engine()
	st := eng.Stats()
	degraded := eng.DegradedFlows()
	clStatus := d.clusterStatus()
	if clStatus != nil {
		st = d.cl.Stats()
		degraded = 0
		for _, in := range clStatus.Instances {
			degraded += in.Degraded
		}
	}
	resp := statusResponse{
		State:         d.State().String(),
		Platform:      d.PlatformName(),
		UptimeSeconds: time.Since(d.started).Seconds(),
		Epoch:         eng.Epoch(),
		Chain:         eng.ChainNames(),
		DegradedFlows: degraded,
		Cluster:       clStatus,
		Stats: statusStats{
			Packets:           st.Packets,
			FastPath:          st.FastPath,
			SlowPath:          st.SlowPath,
			Dropped:           st.Dropped,
			Consolidations:    st.Consolidations,
			EventsFired:       st.EventsFired,
			SlowPathFallbacks: st.SlowPathFallbacks,
			DegradedPackets:   st.DegradedPackets,
			FaultRecoveries:   st.FaultRecoveries,
		},
		WAL: statusWAL{
			DurableBytes: d.walW.DurableLen(),
			Size:         d.walW.Size(),
			Seq:          d.walW.Seq(),
			Syncs:        d.walW.Syncs(),
		},
		Checkpoint: statusCheckpoint{AgeSeconds: -1},
	}
	if last := eng.LastCheckpoint(); !last.IsZero() {
		resp.Checkpoint.AgeSeconds = time.Since(last).Seconds()
		resp.Checkpoint.LastUnix = last.Unix()
	}
	if d.mq != nil {
		snap := d.hub.Registry.Snapshot()
		for i := 0; i < d.mq.Workers(); i++ {
			resp.Workers = append(resp.Workers, statusWorker{
				Worker:     i,
				QueueDepth: snap.Gauges[fmt.Sprintf(`speedybox_mq_queue_depth{worker="%d"}`, i)],
				Packets:    snap.Counters[fmt.Sprintf(`speedybox_mq_worker_packets_total{worker="%d"}`, i)],
			})
		}
	} else {
		// Cluster mode: the steerer partitions per window; report the
		// last window's per-worker queue depths.
		for i, depth := range d.clRun.lastDepths() {
			resp.Workers = append(resp.Workers, statusWorker{Worker: i, QueueDepth: float64(depth)})
		}
	}
	if p := d.pump; p != nil {
		resp.Pump = statusPump{
			Enabled: true,
			Paused:  p.paused(),
			Windows: p.windows.Load(),
			Packets: p.packets.Load(),
			Drops:   p.drops.Load(),
		}
		if err := p.err(); err != nil {
			resp.Pump.Error = err.Error()
		}
	}
	writeJSON(w, resp)
}

type errorsResponse struct {
	Codes []errcode.Registration `json:"codes"`
}

// handleErrors serves the machine-readable error-code registry so
// clients can enumerate every code the API may return.
func (d *Daemon) handleErrors(w http.ResponseWriter, r *http.Request) {
	if !get(w, r) {
		return
	}
	writeJSON(w, errorsResponse{Codes: errcode.All()})
}

// readRestoreFile wraps file reads in the checkpoint-IO error family.
func readRestoreFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCheckpointIO, err)
	}
	return data, nil
}
