// Package fault is the deterministic fault-injection subsystem: a
// seedable injector the engine's control plane consults at well-defined
// decision points (rule installs, event recomputations, NF hops, table
// pressure). Equal seeds reproduce equal fault schedules, so every
// injected scenario — and every bug it surfaces — replays exactly.
//
// The injector only *decides*; the effects live where the state lives:
// core.Engine degrades flows to the always-correct slow path and
// retries with bounded backoff, mat.Global carries the stale marks, and
// the harness's differential oracle replays each schedule against a
// pure slow-path reference engine to prove the degraded system stays
// semantically equivalent (generalizing the paper's §VII-C spot
// checks).
//
// The package depends only on flow (for FID) so the engine, MATs,
// platforms and commands can all import it without cycles.
package fault

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"github.com/fastpathnfv/speedybox/internal/flow"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

// Fault kinds.
const (
	// KindNFError is a transient NF processing failure on the slow
	// path: the NF "crashes" before touching the packet and restarts;
	// the engine reprocesses the hop but abandons the flow's recording,
	// since a restarted NF's Local MAT contribution is untrustworthy.
	KindNFError Kind = iota
	// KindInstallFail is a Global MAT install/replace failure: the
	// consolidated rule never reaches the table. Any previously
	// installed version is now stale with respect to the Local MATs and
	// is marked so the fast path stops serving it.
	KindInstallFail
	// KindEventStorm registers a burst of always-firing no-op events on
	// a freshly consolidated flow, forcing reconsolidation churn on
	// every fast-path packet (the Event Table condition storm).
	KindEventStorm
	// KindRecomputeDelay defers an event-driven rule recomputation: the
	// Local MAT updates are applied but the Global rule is only marked
	// stale; the flow's next packet rebuilds it.
	KindRecomputeDelay
	// KindRecomputeDrop loses an event-driven rule recomputation
	// entirely: the rule is marked stale and the flow enters the
	// escalating retry/backoff ladder.
	KindRecomputeDrop
	// KindBackendFlap fails and later restores a Maglev backend
	// mid-trace. It is an environmental fault: scenario drivers apply
	// the injector's FlapPlan identically to every engine under
	// comparison.
	KindBackendFlap
	// KindEvictPressure evicts a flow's consolidated state (Global
	// rule, Local MAT entries, events) as if the MAT ran out of table
	// space. Flow tracking and NF-internal state survive; the next
	// packet re-records.
	KindEvictPressure
	// KindReconfigAbort fails a chain reconfiguration mid-transition,
	// after the plan has validated but before the new chain is
	// published: Engine.Reconfigure must roll back cleanly, leaving the
	// old chain, epoch and every installed rule untouched.
	KindReconfigAbort
	// KindCrashRestore kills the engine at a planned packet index and
	// restores a fresh one from the last checkpoint plus the durable WAL
	// prefix. Like KindBackendFlap it is an environmental fault driven
	// from a plan (CrashPlan), not a per-packet Should consultation: the
	// scenario driver decides where the crash lands so the reference
	// engine can run uninterrupted for comparison.
	KindCrashRestore
	// KindMigrationAbort fails a cluster flow migration after the flow
	// has been extracted from its old owner but before the new owner
	// commits it: Cluster rebalancing must roll the move back completely
	// — the flow stays on (returns to) the old owner, the new owner
	// keeps no orphan rule or flow entry, and neither engine's epoch
	// moves.
	KindMigrationAbort

	kindCount
)

// Kinds lists every fault kind, for iteration (telemetry labels,
// uniform-rate configs, table-driven tests).
func Kinds() []Kind {
	out := make([]Kind, kindCount)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// String returns the kind's telemetry label.
func (k Kind) String() string {
	switch k {
	case KindNFError:
		return "nf-error"
	case KindInstallFail:
		return "install-fail"
	case KindEventStorm:
		return "event-storm"
	case KindRecomputeDelay:
		return "recompute-delay"
	case KindRecomputeDrop:
		return "recompute-drop"
	case KindBackendFlap:
		return "backend-flap"
	case KindEvictPressure:
		return "evict-pressure"
	case KindReconfigAbort:
		return "reconfig-abort"
	case KindCrashRestore:
		return "crash-restore"
	case KindMigrationAbort:
		return "migration-abort"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config configures an Injector.
type Config struct {
	// Seed drives every decision; equal seeds with equal consultation
	// order reproduce the exact fault schedule.
	Seed int64
	// Rates maps each kind to its injection probability in [0, 1].
	// Kinds absent from the map never fire.
	Rates map[Kind]float64
}

// UniformRates gives every kind the same injection probability — the
// chainsim -fault-rate setting and the oracle's default chaos level.
func UniformRates(rate float64) map[Kind]float64 {
	out := make(map[Kind]float64, kindCount)
	for _, k := range Kinds() {
		out[k] = rate
	}
	return out
}

// Injector is a deterministic, seedable fault source, safe for
// concurrent use. Each decision point consumes one per-kind sequence
// number and hashes (seed, kind, sequence, fid) into an injection
// decision, so a single-threaded run replays bit-identically for a
// given seed while concurrent runs still see stable per-kind rates.
// All methods are nil-receiver safe: a nil *Injector never injects.
type Injector struct {
	seed uint64
	// thresholds[k] is the per-kind injection probability scaled to the
	// full uint64 space (0 = never). Stored atomically so tests and
	// operators can adjust rates mid-run (SetRate).
	thresholds [kindCount]atomic.Uint64
	seqs       [kindCount]atomic.Uint64
	injected   [kindCount]atomic.Uint64
	decisions  [kindCount]atomic.Uint64
}

// New builds an injector from the config.
func New(cfg Config) *Injector {
	i := &Injector{seed: splitmix64(uint64(cfg.Seed) ^ 0x5bf03635)}
	for k, r := range cfg.Rates {
		i.SetRate(k, r)
	}
	return i
}

// SetRate replaces one kind's injection probability (clamped to
// [0, 1]). Safe during a run; rate 0 disables the kind.
func (i *Injector) SetRate(k Kind, rate float64) {
	if i == nil || k >= kindCount {
		return
	}
	switch {
	case rate <= 0 || math.IsNaN(rate):
		i.thresholds[k].Store(0)
	case rate >= 1:
		i.thresholds[k].Store(math.MaxUint64)
	default:
		i.thresholds[k].Store(uint64(rate * math.MaxUint64))
	}
}

// Rate returns one kind's current injection probability.
func (i *Injector) Rate(k Kind) float64 {
	if i == nil || k >= kindCount {
		return 0
	}
	t := i.thresholds[k].Load()
	if t == math.MaxUint64 {
		return 1
	}
	return float64(t) / math.MaxUint64
}

// Should consults the injector at one decision point for the flow,
// reporting whether the fault fires. Every call consumes one per-kind
// sequence number, so schedules are reproducible from the seed.
func (i *Injector) Should(k Kind, fid flow.FID) bool {
	if i == nil || k >= kindCount {
		return false
	}
	t := i.thresholds[k].Load()
	if t == 0 {
		return false
	}
	n := i.seqs[k].Add(1)
	i.decisions[k].Add(1)
	h := splitmix64(i.seed ^ uint64(k)<<56 ^ n*0x9e3779b97f4a7c15 ^ uint64(fid)<<32)
	if h <= t {
		i.injected[k].Add(1)
		return true
	}
	return false
}

// Injected returns how many faults of one kind have fired.
func (i *Injector) Injected(k Kind) uint64 {
	if i == nil || k >= kindCount {
		return 0
	}
	return i.injected[k].Load()
}

// Decisions returns how many decision points of one kind were
// consulted with a nonzero rate.
func (i *Injector) Decisions(k Kind) uint64 {
	if i == nil || k >= kindCount {
		return 0
	}
	return i.decisions[k].Load()
}

// InjectedTotal returns the total faults fired across all kinds.
func (i *Injector) InjectedTotal() uint64 {
	if i == nil {
		return 0
	}
	var sum uint64
	for k := range i.injected {
		sum += i.injected[k].Load()
	}
	return sum
}

// Summary renders per-kind injected/decision counts for CLI reports,
// in kind order, skipping never-consulted kinds.
func (i *Injector) Summary() string {
	if i == nil {
		return "faults: disabled"
	}
	out := "faults:"
	any := false
	for _, k := range Kinds() {
		d := i.Decisions(k)
		if d == 0 {
			continue
		}
		any = true
		out += fmt.Sprintf(" %s=%d/%d", k, i.Injected(k), d)
	}
	if !any {
		return "faults: none consulted"
	}
	return out
}

// Flap is one planned Maglev backend transition.
type Flap struct {
	// At is the packet index before which the transition applies.
	At int
	// Backend indexes the affected backend.
	Backend int
	// Restore distinguishes recovery from failure.
	Restore bool
}

// FlapPlan derives a deterministic backend flap schedule for a trace of
// n packets over a pool of the given size: each planned fault is a
// fail/restore pair, count scaled by the KindBackendFlap rate (at least
// one pair when the rate is nonzero), sorted by packet index. Scenario
// drivers apply the plan identically to every engine under comparison,
// since a pool change legitimately changes packet semantics.
func (i *Injector) FlapPlan(n, backends int) []Flap {
	if i == nil || n < 4 || backends < 2 {
		return nil
	}
	rate := i.Rate(KindBackendFlap)
	if rate <= 0 {
		return nil
	}
	pairs := int(rate*4) + 1
	if pairs > backends {
		pairs = backends
	}
	plan := make([]Flap, 0, 2*pairs)
	for p := 0; p < pairs; p++ {
		h := splitmix64(i.seed ^ 0xf1a9 ^ uint64(p)*0x9e3779b97f4a7c15)
		b := int(h % uint64(backends))
		failAt := 1 + int((h>>16)%uint64(n/2))
		restoreAt := failAt + 1 + int((h>>40)%uint64(n-failAt))
		if restoreAt > n {
			restoreAt = n
		}
		plan = append(plan,
			Flap{At: failAt, Backend: b},
			Flap{At: restoreAt, Backend: b, Restore: true},
		)
	}
	sort.SliceStable(plan, func(a, b int) bool { return plan[a].At < plan[b].At })
	return plan
}

// Crash is one planned engine kill/restore point.
type Crash struct {
	// At is the packet index before which the engine is killed and
	// restored from its last checkpoint plus the durable WAL prefix.
	At int
}

// CrashPlan derives a deterministic crash/restore schedule for a trace
// of n packets: the count scales with the KindCrashRestore rate (at
// least one crash when the rate is nonzero, capped at four), and every
// crash lands in the middle 80% of the trace so both the pre-crash
// warmup and the post-restore recovery window are observable. Indices
// are sorted and deduplicated.
func (i *Injector) CrashPlan(n int) []Crash {
	if i == nil || n < 8 {
		return nil
	}
	rate := i.Rate(KindCrashRestore)
	if rate <= 0 {
		return nil
	}
	count := int(rate*4) + 1
	if count > 4 {
		count = 4
	}
	lo, span := n/10, (8*n)/10
	if span < 1 {
		span = 1
	}
	plan := make([]Crash, 0, count)
	for p := 0; p < count; p++ {
		h := splitmix64(i.seed ^ 0xc4a5 ^ uint64(p)*0x9e3779b97f4a7c15)
		at := lo + int(h%uint64(span))
		dup := false
		for _, c := range plan {
			if c.At == at {
				dup = true
				break
			}
		}
		if !dup {
			plan = append(plan, Crash{At: at})
		}
	}
	sort.Slice(plan, func(a, b int) bool { return plan[a].At < plan[b].At })
	return plan
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-distributed
// 64-bit mixer (Steele et al.), the standard choice for turning
// structured inputs (seed, kind, sequence) into decision bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
