package fault

import (
	"math"
	"strings"
	"testing"

	"github.com/fastpathnfv/speedybox/internal/flow"
)

func TestNilInjectorIsInert(t *testing.T) {
	var i *Injector
	if i.Should(KindInstallFail, 1) {
		t.Error("nil injector injected")
	}
	i.SetRate(KindInstallFail, 1)
	if i.Rate(KindInstallFail) != 0 {
		t.Error("nil injector reported a rate")
	}
	if i.InjectedTotal() != 0 || i.Injected(KindNFError) != 0 || i.Decisions(KindNFError) != 0 {
		t.Error("nil injector reported counts")
	}
	if i.FlapPlan(100, 3) != nil {
		t.Error("nil injector planned flaps")
	}
	if i.Summary() != "faults: disabled" {
		t.Errorf("nil Summary = %q", i.Summary())
	}
}

func TestRateZeroNeverFiresAndConsumesNothing(t *testing.T) {
	i := New(Config{Seed: 1})
	for n := 0; n < 1000; n++ {
		if i.Should(KindInstallFail, flow.FID(n)) {
			t.Fatal("rate-0 kind fired")
		}
	}
	if i.Decisions(KindInstallFail) != 0 {
		t.Error("rate-0 decisions were counted")
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	i := New(Config{Seed: 7, Rates: map[Kind]float64{KindNFError: 1}})
	for n := 0; n < 500; n++ {
		if !i.Should(KindNFError, flow.FID(n)) {
			t.Fatal("rate-1 kind did not fire")
		}
	}
	if got := i.Injected(KindNFError); got != 500 {
		t.Errorf("Injected = %d, want 500", got)
	}
	if got := i.Decisions(KindNFError); got != 500 {
		t.Errorf("Decisions = %d, want 500", got)
	}
}

func TestDeterministicScheduleAcrossInstances(t *testing.T) {
	mk := func() *Injector {
		return New(Config{Seed: 42, Rates: UniformRates(0.3)})
	}
	a, b := mk(), mk()
	for n := 0; n < 2000; n++ {
		for _, k := range Kinds() {
			fid := flow.FID(n % 17)
			if a.Should(k, fid) != b.Should(k, fid) {
				t.Fatalf("decision %d for %v diverged between equal seeds", n, k)
			}
		}
	}
	if a.InjectedTotal() == 0 {
		t.Error("no faults fired at rate 0.3")
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(Config{Seed: 1, Rates: UniformRates(0.5)})
	b := New(Config{Seed: 2, Rates: UniformRates(0.5)})
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Should(KindInstallFail, flow.FID(i)) == b.Should(KindInstallFail, flow.FID(i)) {
			same++
		}
	}
	if same == n {
		t.Error("seeds 1 and 2 produced identical schedules")
	}
}

func TestEmpiricalRate(t *testing.T) {
	i := New(Config{Seed: 3, Rates: map[Kind]float64{KindEvictPressure: 0.2}})
	const n = 20000
	fired := 0
	for j := 0; j < n; j++ {
		if i.Should(KindEvictPressure, flow.FID(j)) {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-0.2) > 0.02 {
		t.Errorf("empirical rate %.3f, want 0.2 ± 0.02", got)
	}
}

func TestSetRateMidRun(t *testing.T) {
	i := New(Config{Seed: 5, Rates: map[Kind]float64{KindInstallFail: 1}})
	if !i.Should(KindInstallFail, 1) {
		t.Fatal("rate 1 did not fire")
	}
	i.SetRate(KindInstallFail, 0)
	if i.Should(KindInstallFail, 1) {
		t.Fatal("rate 0 fired after SetRate")
	}
	if got := i.Rate(KindInstallFail); got != 0 {
		t.Errorf("Rate = %v after SetRate(0)", got)
	}
	i.SetRate(KindInstallFail, 2) // clamps to 1
	if got := i.Rate(KindInstallFail); got != 1 {
		t.Errorf("Rate = %v after SetRate(2), want 1", got)
	}
	i.SetRate(KindInstallFail, math.NaN())
	if got := i.Rate(KindInstallFail); got != 0 {
		t.Errorf("Rate = %v after SetRate(NaN), want 0", got)
	}
}

func TestKindStrings(t *testing.T) {
	seen := make(map[string]bool)
	for _, k := range Kinds() {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no label", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind label %q", s)
		}
		seen[s] = true
	}
	if got := Kind(250).String(); got != "Kind(250)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestFlapPlan(t *testing.T) {
	i := New(Config{Seed: 9, Rates: map[Kind]float64{KindBackendFlap: 0.5}})
	plan := i.FlapPlan(100, 3)
	if len(plan) == 0 {
		t.Fatal("nonzero flap rate produced no plan")
	}
	if len(plan)%2 != 0 {
		t.Errorf("plan has %d entries, want fail/restore pairs", len(plan))
	}
	fails, restores := 0, 0
	for j, f := range plan {
		if f.At < 0 || f.At > 100 {
			t.Errorf("flap %d at packet %d out of trace", j, f.At)
		}
		if f.Backend < 0 || f.Backend >= 3 {
			t.Errorf("flap %d backend %d out of pool", j, f.Backend)
		}
		if j > 0 && plan[j-1].At > f.At {
			t.Error("plan not sorted by packet index")
		}
		if f.Restore {
			restores++
		} else {
			fails++
		}
	}
	if fails != restores {
		t.Errorf("%d fails vs %d restores, want paired", fails, restores)
	}

	// Deterministic: same seed, same plan.
	again := New(Config{Seed: 9, Rates: map[Kind]float64{KindBackendFlap: 0.5}}).FlapPlan(100, 3)
	if len(again) != len(plan) {
		t.Fatalf("plan length diverged between equal seeds")
	}
	for j := range plan {
		if plan[j] != again[j] {
			t.Errorf("flap %d diverged between equal seeds", j)
		}
	}

	// No flaps planned when disabled or the pool/trace is too small.
	if New(Config{Seed: 9}).FlapPlan(100, 3) != nil {
		t.Error("rate-0 injector planned flaps")
	}
	if i.FlapPlan(2, 3) != nil || i.FlapPlan(100, 1) != nil {
		t.Error("degenerate trace/pool planned flaps")
	}
}

func TestSummary(t *testing.T) {
	i := New(Config{Seed: 11, Rates: map[Kind]float64{KindInstallFail: 1}})
	if got := i.Summary(); got != "faults: none consulted" {
		t.Errorf("fresh Summary = %q", got)
	}
	i.Should(KindInstallFail, 1)
	if got := i.Summary(); !strings.Contains(got, "install-fail=1/1") {
		t.Errorf("Summary = %q, want install-fail=1/1", got)
	}
}
