package packet

import (
	"encoding/binary"
	"fmt"
)

// Spec describes a packet to synthesize. It is used by the trace
// generator and throughout the tests.
type Spec struct {
	// SrcMAC and DstMAC default to locally administered addresses if
	// zero.
	SrcMAC [6]byte
	DstMAC [6]byte
	// SrcIP, DstIP, SrcPort, DstPort and Proto form the 5-tuple.
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	// Proto is ProtoTCP or ProtoUDP; defaults to ProtoTCP when zero.
	Proto uint8
	// TTL defaults to 64 when zero.
	TTL uint8
	// TCPFlags is the flag byte for TCP packets (e.g. TCPFlagSYN).
	TCPFlags uint8
	// Seq and Ack are the TCP sequence/acknowledgement numbers.
	Seq uint32
	Ack uint32
	// Payload is the application payload.
	Payload []byte
}

// Build synthesizes a parsed, checksum-correct packet from the spec.
func Build(s Spec) (*Packet, error) {
	proto := s.Proto
	if proto == 0 {
		proto = ProtoTCP
	}
	var l4Len int
	switch proto {
	case ProtoTCP:
		l4Len = TCPHeaderLen
	case ProtoUDP:
		l4Len = UDPHeaderLen
	default:
		return nil, fmt.Errorf("%w: protocol %d", ErrUnsupported, proto)
	}
	ttl := s.TTL
	if ttl == 0 {
		ttl = 64
	}
	srcMAC, dstMAC := s.SrcMAC, s.DstMAC
	if srcMAC == ([6]byte{}) {
		srcMAC = [6]byte{0x02, 0, 0, 0, 0, 0x01}
	}
	if dstMAC == ([6]byte{}) {
		dstMAC = [6]byte{0x02, 0, 0, 0, 0, 0x02}
	}

	ipLen := IPv4HeaderLen + l4Len + len(s.Payload)
	frame := make([]byte, EthHeaderLen+ipLen)

	// Ethernet.
	copy(frame[0:6], dstMAC[:])
	copy(frame[6:12], srcMAC[:])
	binary.BigEndian.PutUint16(frame[12:14], EtherTypeIPv4)

	// IPv4.
	ip := frame[EthHeaderLen:]
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	ip[8] = ttl
	ip[9] = proto
	copy(ip[12:16], s.SrcIP[:])
	copy(ip[16:20], s.DstIP[:])

	// Transport.
	l4 := ip[IPv4HeaderLen:]
	switch proto {
	case ProtoTCP:
		binary.BigEndian.PutUint16(l4[0:2], s.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], s.DstPort)
		binary.BigEndian.PutUint32(l4[4:8], s.Seq)
		binary.BigEndian.PutUint32(l4[8:12], s.Ack)
		l4[12] = (TCPHeaderLen / 4) << 4 // data offset, no options
		l4[13] = s.TCPFlags
		binary.BigEndian.PutUint16(l4[14:16], 65535) // window
		copy(l4[TCPHeaderLen:], s.Payload)
	case ProtoUDP:
		binary.BigEndian.PutUint16(l4[0:2], s.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], s.DstPort)
		binary.BigEndian.PutUint16(l4[4:6], uint16(UDPHeaderLen+len(s.Payload)))
		copy(l4[UDPHeaderLen:], s.Payload)
	}

	p := New(frame)
	if err := p.Parse(); err != nil {
		return nil, fmt.Errorf("packet: building spec: %w", err)
	}
	if err := p.FinalizeChecksums(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for tests and examples where the spec is known
// valid; it panics on error.
func MustBuild(s Spec) *Packet {
	p, err := Build(s)
	if err != nil {
		panic(err)
	}
	return p
}

// IP4 is shorthand for constructing an address literal.
func IP4(a, b, c, d byte) [4]byte { return [4]byte{a, b, c, d} }
