package packet

import "sync"

// Pool recycles packet descriptors and their frame buffers, mirroring
// a DPDK mempool: trace replay and the batch runners draw descriptors
// from the pool instead of allocating a fresh buffer per packet per
// pass. Descriptors returned by Get keep whatever buffer capacity
// their previous life grew, so steady-state replay of a trace whose
// frames fit the recycled capacities performs zero heap allocations.
//
// A Pool is safe for concurrent use. Packets obtained from a Pool are
// ordinary Packets in every respect; returning them with Put is an
// optimization, never a requirement (an un-Put packet is simply
// garbage collected).
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty descriptor pool.
func NewPool() *Pool {
	return &Pool{p: sync.Pool{New: func() any { return new(Packet) }}}
}

// Get returns an empty, unparsed descriptor with recycled buffer
// capacity (zero-length frame). Load a frame with CloneInto or
// SetFrame before use.
func (pl *Pool) Get() *Packet {
	pkt := pl.p.Get().(*Packet)
	pkt.reset()
	return pkt
}

// Clone returns a pooled deep copy of src, equivalent to src.Clone()
// but reusing a recycled descriptor and buffer.
func (pl *Pool) Clone(src *Packet) *Packet {
	pkt := pl.p.Get().(*Packet)
	src.CloneInto(pkt)
	return pkt
}

// Put returns a descriptor to the pool. The packet must not be used
// after Put. Dropped packets may be Put too: Drop released their
// buffer, so they recycle only the descriptor.
func (pl *Pool) Put(pkt *Packet) {
	if pkt == nil {
		return
	}
	pkt.reset()
	pl.p.Put(pkt)
}

// SetFrame loads a frame into the packet by copying, reusing the
// packet's buffer capacity when it suffices, and clears metadata and
// parse state. It is the pooled counterpart of New(frame) without
// taking ownership of the caller's slice.
func (p *Packet) SetFrame(frame []byte) {
	p.Meta = Meta{}
	p.data = append(p.data[:0], frame...)
	p.hdr = Headers{}
	p.parsed = false
	p.dropped = false
}

// reset clears the descriptor for recycling, keeping buffer capacity.
func (p *Packet) reset() {
	p.Meta = Meta{}
	p.data = p.data[:0]
	p.hdr = Headers{}
	p.parsed = false
	p.dropped = false
}
