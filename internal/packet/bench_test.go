package packet

import "testing"

func benchFrame(b *testing.B, payload int) []byte {
	b.Helper()
	p := MustBuild(Spec{
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2),
		SrcPort: 4000, DstPort: 80, Proto: ProtoTCP,
		Payload: make([]byte, payload),
	})
	return p.Data()
}

// BenchmarkParse measures one full header parse — the step every NF
// repeats on the original path (redundancy R1).
func BenchmarkParse(b *testing.B) {
	frame := benchFrame(b, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := New(frame)
		if err := p.Parse(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFinalizeChecksums measures the checksum refresh charged per
// modifying NF on the original path and once on the consolidated path.
func BenchmarkFinalizeChecksums(b *testing.B) {
	p := MustBuild(Spec{
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2),
		SrcPort: 4000, DstPort: 80, Proto: ProtoTCP,
		Payload: make([]byte, 512),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.FinalizeChecksums(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSetField measures one header-field rewrite.
func BenchmarkSetField(b *testing.B) {
	p := MustBuild(Spec{
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2),
		SrcPort: 4000, DstPort: 80,
	})
	v := []byte{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Set(FieldDstIP, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncapDecapAH measures the header push/pop pair a VPN NF
// performs per packet.
func BenchmarkEncapDecapAH(b *testing.B) {
	p := MustBuild(Spec{
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2),
		SrcPort: 4000, DstPort: 80, Payload: make([]byte, 128),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.EncapAH(1, uint32(i)); err != nil {
			b.Fatal(err)
		}
		if err := p.DecapAH(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuild measures packet synthesis (trace generation hot path).
func BenchmarkBuild(b *testing.B) {
	spec := Spec{
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2),
		SrcPort: 4000, DstPort: 80, Payload: make([]byte, 128),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(spec); err != nil {
			b.Fatal(err)
		}
	}
}
