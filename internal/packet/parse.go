package packet

import (
	"encoding/binary"
	"fmt"
)

// Parse walks the frame and records header offsets. It accepts
// Ethernet (optionally 802.1Q-tagged, possibly stacked), IPv4 without
// options, zero or more AH headers, and a TCP or UDP transport header.
//
// Parse is the functional counterpart of the parse step every NF in an
// unconsolidated chain repeats (redundancy R1 in the paper, §II-A);
// cycle accounting for it lives in the callers.
func (p *Packet) Parse() error {
	if p.dropped {
		return ErrDropped
	}
	var h Headers
	data := p.data
	if len(data) < EthHeaderLen {
		return fmt.Errorf("%w: %d bytes, need %d for ethernet", ErrTruncated, len(data), EthHeaderLen)
	}

	// L2: Ethernet plus any stack of 802.1Q tags.
	off := 12 // EtherType position
	etherType := binary.BigEndian.Uint16(data[off : off+2])
	for etherType == EtherTypeVLAN {
		if len(data) < off+2+VLANTagLen {
			return fmt.Errorf("%w: truncated VLAN tag", ErrTruncated)
		}
		h.VLANs++
		off += VLANTagLen
		etherType = binary.BigEndian.Uint16(data[off : off+2])
	}
	if etherType != EtherTypeIPv4 {
		return fmt.Errorf("%w: ethertype 0x%04x", ErrUnsupported, etherType)
	}
	h.L2Len = off + 2
	h.IPOff = h.L2Len

	// L3: IPv4, no options.
	if len(data) < h.IPOff+IPv4HeaderLen {
		return fmt.Errorf("%w: %d bytes, need %d for ipv4", ErrTruncated, len(data), h.IPOff+IPv4HeaderLen)
	}
	vihl := data[h.IPOff]
	if vihl>>4 != 4 {
		return fmt.Errorf("%w: ip version %d", ErrUnsupported, vihl>>4)
	}
	ihl := int(vihl&0x0f) * 4
	if ihl != IPv4HeaderLen {
		return fmt.Errorf("%w: ipv4 options (ihl=%d)", ErrUnsupported, ihl)
	}
	totLen := int(binary.BigEndian.Uint16(data[h.IPOff+2 : h.IPOff+4]))
	if h.IPOff+totLen > len(data) || totLen < IPv4HeaderLen {
		return fmt.Errorf("%w: ip total length %d exceeds frame", ErrTruncated, totLen)
	}

	// AH stack, then transport.
	proto := data[h.IPOff+9]
	off = h.IPOff + IPv4HeaderLen
	for proto == ProtoAH {
		if len(data) < off+AHHeaderLen {
			return fmt.Errorf("%w: truncated AH header", ErrTruncated)
		}
		h.AHCount++
		proto = data[off] // AH next-header field
		off += AHHeaderLen
	}
	h.L4Off = off
	h.L4Proto = proto
	switch proto {
	case ProtoTCP:
		if len(data) < off+TCPHeaderLen {
			return fmt.Errorf("%w: truncated TCP header", ErrTruncated)
		}
		dataOff := int(data[off+12]>>4) * 4
		if dataOff < TCPHeaderLen || len(data) < off+dataOff {
			return fmt.Errorf("%w: bad TCP data offset %d", ErrTruncated, dataOff)
		}
		h.PayloadOff = off + dataOff
	case ProtoUDP:
		if len(data) < off+UDPHeaderLen {
			return fmt.Errorf("%w: truncated UDP header", ErrTruncated)
		}
		h.PayloadOff = off + UDPHeaderLen
	default:
		return fmt.Errorf("%w: ip protocol %d", ErrUnsupported, proto)
	}

	p.hdr = h
	p.parsed = true
	return nil
}

// FiveTuple is the canonical flow key: addresses, ports and protocol.
type FiveTuple struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders the tuple in src -> dst form.
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d/%d",
		ft.SrcIP[0], ft.SrcIP[1], ft.SrcIP[2], ft.SrcIP[3], ft.SrcPort,
		ft.DstIP[0], ft.DstIP[1], ft.DstIP[2], ft.DstIP[3], ft.DstPort, ft.Proto)
}

// Reverse returns the tuple of the opposite direction of the same
// connection.
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP: ft.DstIP, DstIP: ft.SrcIP,
		SrcPort: ft.DstPort, DstPort: ft.SrcPort,
		Proto: ft.Proto,
	}
}

// FiveTuple extracts the flow key from a parsed packet.
func (p *Packet) FiveTuple() (FiveTuple, error) {
	if !p.parsed {
		return FiveTuple{}, ErrNotParsed
	}
	var ft FiveTuple
	ip := p.hdr.IPOff
	copy(ft.SrcIP[:], p.data[ip+12:ip+16])
	copy(ft.DstIP[:], p.data[ip+16:ip+20])
	l4 := p.hdr.L4Off
	ft.SrcPort = binary.BigEndian.Uint16(p.data[l4 : l4+2])
	ft.DstPort = binary.BigEndian.Uint16(p.data[l4+2 : l4+4])
	ft.Proto = p.hdr.L4Proto
	return ft, nil
}

// FlowKey returns the five-tuple packed into two words — the source
// and destination addresses in hi, the ports and protocol in lo — for
// key comparisons on hot paths that would otherwise build and compare
// the 13-byte FiveTuple struct per packet. Two packets have equal
// (hi, lo) keys exactly when their FiveTuples are equal. ok is false
// for unparsed packets.
func (p *Packet) FlowKey() (hi, lo uint64, ok bool) {
	if !p.parsed {
		return 0, 0, false
	}
	ip := p.hdr.IPOff
	l4 := p.hdr.L4Off
	hi = binary.BigEndian.Uint64(p.data[ip+12 : ip+20])
	lo = uint64(binary.BigEndian.Uint32(p.data[l4:l4+4]))<<8 | uint64(p.hdr.L4Proto)
	return hi, lo, true
}

// TCP flag bits in the 13th byte of the TCP header.
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
)

// TCPFlags returns the TCP flag byte. The boolean is false for non-TCP
// or unparsed packets.
func (p *Packet) TCPFlags() (uint8, bool) {
	if !p.parsed || p.hdr.L4Proto != ProtoTCP {
		return 0, false
	}
	return p.data[p.hdr.L4Off+13], true
}

// SetTCPFlags overwrites the TCP flag byte. It returns ErrNoHeader for
// non-TCP packets.
func (p *Packet) SetTCPFlags(flags uint8) error {
	if !p.parsed {
		return ErrNotParsed
	}
	if p.hdr.L4Proto != ProtoTCP {
		return ErrNoHeader
	}
	p.data[p.hdr.L4Off+13] = flags
	return nil
}
