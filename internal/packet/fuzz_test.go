package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickParseNeverPanics feeds arbitrary byte soup to the parser:
// it must return an error or a consistent parse, never panic or read
// out of bounds (the race/bounds checking of `go test` enforces the
// latter).
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		p := New(data)
		if err := p.Parse(); err != nil {
			return true
		}
		// A successful parse must yield in-bounds offsets and a
		// usable 5-tuple.
		h, ok := p.Headers()
		if !ok {
			return false
		}
		if h.PayloadOff > len(data) || h.L4Off > h.PayloadOff || h.IPOff > h.L4Off {
			return false
		}
		_, err := p.FiveTuple()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickParseMutatedValidFrames takes valid frames and flips random
// bytes: parsing must stay panic-free and any successful parse must
// stay self-consistent.
func TestQuickParseMutatedValidFrames(t *testing.T) {
	base := MustBuild(Spec{
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2),
		SrcPort: 1234, DstPort: 80, Proto: ProtoTCP,
		Payload: []byte("payload for mutation"),
	}).Data()

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, len(base))
		copy(data, base)
		for flips := rng.Intn(8); flips > 0; flips-- {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		// Occasionally truncate too.
		if rng.Intn(3) == 0 {
			data = data[:rng.Intn(len(data)+1)]
		}
		p := New(data)
		if err := p.Parse(); err != nil {
			return true
		}
		h, _ := p.Headers()
		return h.PayloadOff <= len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickFinalizeChecksumsAfterMutation: finalize must succeed on
// any successfully parsed frame and leave it verifiable.
func TestQuickFinalizeAlwaysVerifies(t *testing.T) {
	f := func(payload []byte, dip [4]byte, dport uint16) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		p, err := Build(Spec{
			SrcIP: IP4(1, 2, 3, 4), DstIP: dip,
			SrcPort: 9999, DstPort: dport, Proto: ProtoUDP,
			Payload: payload,
		})
		if err != nil {
			return false
		}
		if err := p.Set(FieldDstIP, []byte{5, 6, 7, 8}); err != nil {
			return false
		}
		if err := p.FinalizeChecksums(); err != nil {
			return false
		}
		return p.VerifyChecksums()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
