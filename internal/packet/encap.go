package packet

import (
	"encoding/binary"
	"fmt"
)

// HeaderType identifies a header that Encap/Decap actions push or pop.
// It is the unit of the encap/decap stack the Global MAT simulates
// during consolidation (paper §V-B).
type HeaderType int

// Supported encapsulation header types.
const (
	// HeaderAH is the IPsec-style authentication header a VPN NF adds
	// (paper §IV-A1: "VPNs add an Authentication Header (AH) for each
	// packet before forwarding").
	HeaderAH HeaderType = iota + 1
	// HeaderVLAN is an 802.1Q tag, exercising a second, L2-level
	// encapsulation point.
	HeaderVLAN
)

// String returns the header type name.
func (t HeaderType) String() string {
	switch t {
	case HeaderAH:
		return "AH"
	case HeaderVLAN:
		return "VLAN"
	default:
		return fmt.Sprintf("HeaderType(%d)", int(t))
	}
}

// ExtraHeader describes one header to encapsulate: its type plus the
// type-specific parameters.
type ExtraHeader struct {
	// Type selects the header layout.
	Type HeaderType
	// SPI is the security parameter index for HeaderAH.
	SPI uint32
	// Seq is the sequence number for HeaderAH.
	Seq uint32
	// Tag is the VLAN ID (12 bits used) for HeaderVLAN.
	Tag uint16
}

// EncapAH inserts an authentication header between the IPv4 header and
// whatever follows it, updating the IP protocol chain and total
// length. The packet is re-parsed on success.
func (p *Packet) EncapAH(spi, seq uint32) error {
	if !p.parsed {
		return ErrNotParsed
	}
	ip := p.hdr.IPOff
	insertAt := ip + IPv4HeaderLen
	oldProto := p.data[ip+9]

	ah := make([]byte, AHHeaderLen)
	ah[0] = oldProto
	ah[1] = (AHHeaderLen / 4) - 2 // RFC 4302 payload length encoding
	binary.BigEndian.PutUint32(ah[4:8], spi)
	binary.BigEndian.PutUint32(ah[8:12], seq)

	p.data = insertBytes(p.data, insertAt, ah)
	p.data[ip+9] = ProtoAH
	totLen := binary.BigEndian.Uint16(p.data[ip+2 : ip+4])
	binary.BigEndian.PutUint16(p.data[ip+2:ip+4], totLen+AHHeaderLen)
	return p.Parse()
}

// DecapAH removes the outermost authentication header. It returns
// ErrNoHeader if the packet has none.
func (p *Packet) DecapAH() error {
	if !p.parsed {
		return ErrNotParsed
	}
	if p.hdr.AHCount == 0 {
		return fmt.Errorf("%w: AH", ErrNoHeader)
	}
	ip := p.hdr.IPOff
	ahOff := ip + IPv4HeaderLen
	inner := p.data[ahOff] // next-header field
	p.data = removeBytes(p.data, ahOff, AHHeaderLen)
	p.data[ip+9] = inner
	totLen := binary.BigEndian.Uint16(p.data[ip+2 : ip+4])
	binary.BigEndian.PutUint16(p.data[ip+2:ip+4], totLen-AHHeaderLen)
	return p.Parse()
}

// EncapVLAN pushes an 802.1Q tag directly after the MAC addresses.
func (p *Packet) EncapVLAN(tag uint16) error {
	if !p.parsed {
		return ErrNotParsed
	}
	vlan := make([]byte, VLANTagLen)
	binary.BigEndian.PutUint16(vlan[0:2], EtherTypeVLAN)
	binary.BigEndian.PutUint16(vlan[2:4], tag&0x0fff)
	// The tag occupies the former EtherType position; the original
	// EtherType (and any existing tags) shift right by 4 bytes.
	p.data = insertBytes(p.data, 12, vlan)
	return p.Parse()
}

// DecapVLAN pops the outermost 802.1Q tag.
func (p *Packet) DecapVLAN() error {
	if !p.parsed {
		return ErrNotParsed
	}
	if p.hdr.VLANs == 0 {
		return fmt.Errorf("%w: VLAN", ErrNoHeader)
	}
	p.data = removeBytes(p.data, 12, VLANTagLen)
	return p.Parse()
}

// Encap applies an ExtraHeader description, dispatching on type.
func (p *Packet) Encap(h ExtraHeader) error {
	switch h.Type {
	case HeaderAH:
		return p.EncapAH(h.SPI, h.Seq)
	case HeaderVLAN:
		return p.EncapVLAN(h.Tag)
	default:
		return fmt.Errorf("%w: encap %v", ErrUnsupported, h.Type)
	}
}

// Decap removes the outermost header of the given type.
func (p *Packet) Decap(t HeaderType) error {
	switch t {
	case HeaderAH:
		return p.DecapAH()
	case HeaderVLAN:
		return p.DecapVLAN()
	default:
		return fmt.Errorf("%w: decap %v", ErrUnsupported, t)
	}
}

// OutermostVLAN returns the outermost VLAN tag value, if any.
func (p *Packet) OutermostVLAN() (uint16, bool) {
	if !p.parsed || p.hdr.VLANs == 0 {
		return 0, false
	}
	return binary.BigEndian.Uint16(p.data[14:16]) & 0x0fff, true
}

// OutermostAH returns the SPI and sequence of the outermost AH header,
// if any.
func (p *Packet) OutermostAH() (spi, seq uint32, ok bool) {
	if !p.parsed || p.hdr.AHCount == 0 {
		return 0, 0, false
	}
	off := p.hdr.IPOff + IPv4HeaderLen
	return binary.BigEndian.Uint32(p.data[off+4 : off+8]),
		binary.BigEndian.Uint32(p.data[off+8 : off+12]), true
}

func insertBytes(data []byte, at int, ins []byte) []byte {
	out := make([]byte, 0, len(data)+len(ins))
	out = append(out, data[:at]...)
	out = append(out, ins...)
	out = append(out, data[at:]...)
	return out
}

func removeBytes(data []byte, at, n int) []byte {
	out := make([]byte, 0, len(data)-n)
	out = append(out, data[:at]...)
	out = append(out, data[at+n:]...)
	return out
}
