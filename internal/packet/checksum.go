package packet

import "encoding/binary"

// onesComplementSum computes the 16-bit one's-complement sum used by
// the IPv4, TCP and UDP checksums.
func onesComplementSum(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

func foldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Checksum returns the Internet checksum over data (used directly by
// tests as a reference).
func Checksum(data []byte) uint16 {
	return foldChecksum(onesComplementSum(0, data))
}

// FinalizeChecksums recomputes the IPv4 header checksum and the
// transport checksum after header mutation. The paper performs this
// once at the end of consolidation rather than once per NF (§V-B),
// which is where part of the Modify-consolidation saving comes from;
// callers charge the corresponding cycle cost once.
func (p *Packet) FinalizeChecksums() error {
	if !p.parsed {
		return ErrNotParsed
	}
	ip := p.hdr.IPOff
	// IPv4 header checksum: zero the field, sum the header.
	p.data[ip+10], p.data[ip+11] = 0, 0
	ipSum := Checksum(p.data[ip : ip+IPv4HeaderLen])
	binary.BigEndian.PutUint16(p.data[ip+10:ip+12], ipSum)

	// Transport checksum with IPv4 pseudo-header. The pseudo-header
	// protocol/length cover the L4 segment; AH headers sit between IP
	// and L4 and are excluded (they carry no checksum here).
	l4 := p.hdr.L4Off
	segLen := len(p.data) - l4
	var pseudo [12]byte
	copy(pseudo[0:4], p.data[ip+12:ip+16])
	copy(pseudo[4:8], p.data[ip+16:ip+20])
	pseudo[9] = p.hdr.L4Proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(segLen))

	var ckOff int
	switch p.hdr.L4Proto {
	case ProtoTCP:
		ckOff = l4 + 16
	case ProtoUDP:
		ckOff = l4 + 6
	default:
		return nil
	}
	p.data[ckOff], p.data[ckOff+1] = 0, 0
	sum := onesComplementSum(0, pseudo[:])
	sum = onesComplementSum(sum, p.data[l4:])
	ck := foldChecksum(sum)
	if p.hdr.L4Proto == ProtoUDP && ck == 0 {
		ck = 0xffff // RFC 768: transmitted as all ones
	}
	binary.BigEndian.PutUint16(p.data[ckOff:ckOff+2], ck)
	return nil
}

// VerifyChecksums reports whether the IPv4 and transport checksums are
// currently valid. Used by tests to assert that consolidated output is
// wire-correct.
func (p *Packet) VerifyChecksums() bool {
	if !p.parsed {
		return false
	}
	ip := p.hdr.IPOff
	if Checksum(p.data[ip:ip+IPv4HeaderLen]) != 0 {
		return false
	}
	l4 := p.hdr.L4Off
	segLen := len(p.data) - l4
	var pseudo [12]byte
	copy(pseudo[0:4], p.data[ip+12:ip+16])
	copy(pseudo[4:8], p.data[ip+16:ip+20])
	pseudo[9] = p.hdr.L4Proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(segLen))
	sum := onesComplementSum(0, pseudo[:])
	sum = onesComplementSum(sum, p.data[l4:])
	return foldChecksum(sum) == 0
}
