package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func sampleSpec() Spec {
	return Spec{
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2),
		SrcPort: 40000, DstPort: 80,
		Proto: ProtoTCP, TCPFlags: TCPFlagACK,
		Payload: []byte("hello world"),
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
	}{
		{"tcp with payload", sampleSpec()},
		{"tcp empty payload", Spec{SrcIP: IP4(1, 2, 3, 4), DstIP: IP4(5, 6, 7, 8), SrcPort: 1, DstPort: 2, Proto: ProtoTCP}},
		{"udp", Spec{SrcIP: IP4(192, 168, 0, 1), DstIP: IP4(192, 168, 0, 2), SrcPort: 5353, DstPort: 53, Proto: ProtoUDP, Payload: []byte("q")}},
		{"default proto is tcp", Spec{SrcIP: IP4(9, 9, 9, 9), DstIP: IP4(8, 8, 8, 8), SrcPort: 7, DstPort: 8}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := Build(tt.spec)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			ft, err := p.FiveTuple()
			if err != nil {
				t.Fatalf("FiveTuple: %v", err)
			}
			if ft.SrcIP != tt.spec.SrcIP || ft.DstIP != tt.spec.DstIP {
				t.Errorf("addresses = %v->%v, want %v->%v", ft.SrcIP, ft.DstIP, tt.spec.SrcIP, tt.spec.DstIP)
			}
			if ft.SrcPort != tt.spec.SrcPort || ft.DstPort != tt.spec.DstPort {
				t.Errorf("ports = %d->%d, want %d->%d", ft.SrcPort, ft.DstPort, tt.spec.SrcPort, tt.spec.DstPort)
			}
			if !bytes.Equal(p.Payload(), tt.spec.Payload) {
				t.Errorf("payload = %q, want %q", p.Payload(), tt.spec.Payload)
			}
			if !p.VerifyChecksums() {
				t.Error("checksums invalid on freshly built packet")
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"short ethernet", make([]byte, 10)},
		{"non-ip ethertype", func() []byte {
			f := make([]byte, 60)
			binary.BigEndian.PutUint16(f[12:14], 0x0806) // ARP
			return f
		}()},
		{"truncated ipv4", func() []byte {
			f := make([]byte, EthHeaderLen+10)
			binary.BigEndian.PutUint16(f[12:14], EtherTypeIPv4)
			f[14] = 0x45
			return f
		}()},
		{"ip version 6", func() []byte {
			f := make([]byte, 60)
			binary.BigEndian.PutUint16(f[12:14], EtherTypeIPv4)
			f[14] = 0x60
			return f
		}()},
		{"ipv4 options unsupported", func() []byte {
			f := make([]byte, 80)
			binary.BigEndian.PutUint16(f[12:14], EtherTypeIPv4)
			f[14] = 0x46 // ihl = 24
			binary.BigEndian.PutUint16(f[16:18], 66)
			return f
		}()},
		{"unknown l4 proto", func() []byte {
			f := make([]byte, 60)
			binary.BigEndian.PutUint16(f[12:14], EtherTypeIPv4)
			f[14] = 0x45
			binary.BigEndian.PutUint16(f[16:18], 46)
			f[23] = 132 // SCTP
			return f
		}()},
		{"ip total length beyond frame", func() []byte {
			f := make([]byte, EthHeaderLen+IPv4HeaderLen)
			binary.BigEndian.PutUint16(f[12:14], EtherTypeIPv4)
			f[14] = 0x45
			binary.BigEndian.PutUint16(f[16:18], 999)
			f[23] = ProtoTCP
			return f
		}()},
		{"truncated tcp", func() []byte {
			f := make([]byte, EthHeaderLen+IPv4HeaderLen+4)
			binary.BigEndian.PutUint16(f[12:14], EtherTypeIPv4)
			f[14] = 0x45
			binary.BigEndian.PutUint16(f[16:18], IPv4HeaderLen+4)
			f[23] = ProtoTCP
			return f
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := New(tt.frame).Parse(); err == nil {
				t.Error("Parse succeeded, want error")
			}
		})
	}
}

func TestFieldGetSet(t *testing.T) {
	fields := []struct {
		field Field
		value []byte
	}{
		{FieldSrcMAC, []byte{1, 2, 3, 4, 5, 6}},
		{FieldDstMAC, []byte{6, 5, 4, 3, 2, 1}},
		{FieldSrcIP, []byte{172, 16, 0, 9}},
		{FieldDstIP, []byte{172, 16, 0, 10}},
		{FieldTTL, []byte{13}},
		{FieldDSCP, []byte{0x2e}},
		{FieldSrcPort, PutUint16(12345)},
		{FieldDstPort, PutUint16(443)},
	}
	p := MustBuild(sampleSpec())
	for _, tt := range fields {
		t.Run(tt.field.String(), func(t *testing.T) {
			if err := p.Set(tt.field, tt.value); err != nil {
				t.Fatalf("Set: %v", err)
			}
			got, err := p.Get(tt.field)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(got, tt.value) {
				t.Errorf("Get = %v, want %v", got, tt.value)
			}
		})
	}
	// Payload must be untouched by header edits.
	if !bytes.Equal(p.Payload(), []byte("hello world")) {
		t.Errorf("payload corrupted by header edits: %q", p.Payload())
	}
	// After finalize, checksums are valid again.
	if err := p.FinalizeChecksums(); err != nil {
		t.Fatalf("FinalizeChecksums: %v", err)
	}
	if !p.VerifyChecksums() {
		t.Error("checksums invalid after finalize")
	}
}

func TestSetWrongLength(t *testing.T) {
	p := MustBuild(sampleSpec())
	if err := p.Set(FieldSrcIP, []byte{1, 2}); err == nil {
		t.Error("Set with wrong length succeeded, want error")
	}
	if err := p.Set(Field(0), []byte{}); err == nil {
		t.Error("Set with invalid field succeeded, want error")
	}
}

func TestFieldEnum(t *testing.T) {
	if Field(0).Valid() {
		t.Error("zero Field must be invalid (enums start at one)")
	}
	if Field(99).Valid() {
		t.Error("out-of-range Field must be invalid")
	}
	for f := FieldSrcMAC; f <= FieldDstPort; f++ {
		if !f.Valid() {
			t.Errorf("field %d should be valid", f)
		}
		if f.String() == "" {
			t.Errorf("field %d has empty name", f)
		}
	}
}

func TestChecksumReference(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got, want := Checksum(data), uint16(^uint16(0xddf2)); got != want {
		t.Errorf("Checksum = %#04x, want %#04x", got, want)
	}
	// Odd-length input pads the final byte on the right.
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd Checksum = %#04x", got)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	p := MustBuild(sampleSpec())
	p.Data()[EthHeaderLen+12]++ // flip a source-IP byte without refreshing checksums
	if p.VerifyChecksums() {
		t.Error("VerifyChecksums passed on corrupted packet")
	}
}

func TestEncapDecapAH(t *testing.T) {
	p := MustBuild(sampleSpec())
	origLen := p.Len()
	payload := append([]byte(nil), p.Payload()...)

	if err := p.EncapAH(0xdeadbeef, 7); err != nil {
		t.Fatalf("EncapAH: %v", err)
	}
	if p.Len() != origLen+AHHeaderLen {
		t.Errorf("len after encap = %d, want %d", p.Len(), origLen+AHHeaderLen)
	}
	h, _ := p.Headers()
	if h.AHCount != 1 {
		t.Errorf("AHCount = %d, want 1", h.AHCount)
	}
	spi, seq, ok := p.OutermostAH()
	if !ok || spi != 0xdeadbeef || seq != 7 {
		t.Errorf("OutermostAH = (%#x, %d, %v)", spi, seq, ok)
	}
	// 5-tuple must still be extractable through the AH header.
	ft, err := p.FiveTuple()
	if err != nil || ft.SrcPort != 40000 {
		t.Fatalf("FiveTuple through AH = %v, %v", ft, err)
	}
	if !bytes.Equal(p.Payload(), payload) {
		t.Error("payload corrupted by encap")
	}

	if err := p.DecapAH(); err != nil {
		t.Fatalf("DecapAH: %v", err)
	}
	if p.Len() != origLen {
		t.Errorf("len after decap = %d, want %d", p.Len(), origLen)
	}
	if err := p.FinalizeChecksums(); err != nil {
		t.Fatal(err)
	}
	if !p.VerifyChecksums() {
		t.Error("checksums invalid after encap/decap round trip")
	}
}

func TestEncapAHNested(t *testing.T) {
	p := MustBuild(sampleSpec())
	for i := uint32(1); i <= 3; i++ {
		if err := p.EncapAH(i, i); err != nil {
			t.Fatalf("EncapAH %d: %v", i, err)
		}
	}
	h, _ := p.Headers()
	if h.AHCount != 3 {
		t.Fatalf("AHCount = %d, want 3", h.AHCount)
	}
	// Pops come off in LIFO order.
	for want := uint32(3); want >= 1; want-- {
		spi, _, _ := p.OutermostAH()
		if spi != want {
			t.Errorf("outermost SPI = %d, want %d", spi, want)
		}
		if err := p.DecapAH(); err != nil {
			t.Fatalf("DecapAH: %v", err)
		}
	}
	if err := p.DecapAH(); err == nil {
		t.Error("DecapAH on AH-less packet succeeded, want error")
	}
}

func TestEncapDecapVLAN(t *testing.T) {
	p := MustBuild(sampleSpec())
	if err := p.EncapVLAN(42); err != nil {
		t.Fatalf("EncapVLAN: %v", err)
	}
	tag, ok := p.OutermostVLAN()
	if !ok || tag != 42 {
		t.Fatalf("OutermostVLAN = (%d, %v), want (42, true)", tag, ok)
	}
	if err := p.EncapVLAN(100); err != nil {
		t.Fatalf("stacked EncapVLAN: %v", err)
	}
	h, _ := p.Headers()
	if h.VLANs != 2 {
		t.Errorf("VLANs = %d, want 2", h.VLANs)
	}
	ft, err := p.FiveTuple()
	if err != nil || ft.DstPort != 80 {
		t.Fatalf("FiveTuple through stacked VLANs: %v, %v", ft, err)
	}
	if err := p.DecapVLAN(); err != nil {
		t.Fatal(err)
	}
	if tag, _ := p.OutermostVLAN(); tag != 42 {
		t.Errorf("after pop, outermost tag = %d, want 42", tag)
	}
	if err := p.DecapVLAN(); err != nil {
		t.Fatal(err)
	}
	if err := p.DecapVLAN(); err == nil {
		t.Error("DecapVLAN on untagged packet succeeded, want error")
	}
}

func TestEncapDispatch(t *testing.T) {
	p := MustBuild(sampleSpec())
	if err := p.Encap(ExtraHeader{Type: HeaderVLAN, Tag: 5}); err != nil {
		t.Fatal(err)
	}
	if err := p.Encap(ExtraHeader{Type: HeaderAH, SPI: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Decap(HeaderAH); err != nil {
		t.Fatal(err)
	}
	if err := p.Decap(HeaderVLAN); err != nil {
		t.Fatal(err)
	}
	if err := p.Encap(ExtraHeader{Type: HeaderType(99)}); err == nil {
		t.Error("Encap with unknown type succeeded")
	}
	if err := p.Decap(HeaderType(99)); err == nil {
		t.Error("Decap with unknown type succeeded")
	}
}

func TestDrop(t *testing.T) {
	p := MustBuild(sampleSpec())
	p.Drop()
	if !p.Dropped() {
		t.Error("Dropped = false after Drop")
	}
	if p.Payload() != nil {
		t.Error("Payload non-nil after Drop")
	}
	if err := p.Parse(); err == nil {
		t.Error("Parse succeeded on dropped packet")
	}
}

func TestClone(t *testing.T) {
	p := MustBuild(sampleSpec())
	p.Meta.FID, p.Meta.HasFID = 99, true
	c := p.Clone()
	if c.Meta.FID != 99 || !c.Meta.HasFID {
		t.Error("clone lost metadata")
	}
	// Mutating the clone must not affect the original.
	if err := c.Set(FieldTTL, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if p.TTL() == 1 {
		t.Error("clone shares buffer with original")
	}
}

func TestTCPFlags(t *testing.T) {
	spec := sampleSpec()
	spec.TCPFlags = TCPFlagSYN | TCPFlagACK
	p := MustBuild(spec)
	flags, ok := p.TCPFlags()
	if !ok || flags != TCPFlagSYN|TCPFlagACK {
		t.Errorf("TCPFlags = (%#x, %v)", flags, ok)
	}
	if err := p.SetTCPFlags(TCPFlagFIN); err != nil {
		t.Fatal(err)
	}
	if flags, _ := p.TCPFlags(); flags != TCPFlagFIN {
		t.Errorf("after SetTCPFlags, flags = %#x", flags)
	}
	udp := MustBuild(Spec{SrcIP: IP4(1, 1, 1, 1), DstIP: IP4(2, 2, 2, 2), Proto: ProtoUDP})
	if _, ok := udp.TCPFlags(); ok {
		t.Error("TCPFlags ok on UDP packet")
	}
	if err := udp.SetTCPFlags(0); err == nil {
		t.Error("SetTCPFlags on UDP succeeded")
	}
}

func TestDecrementTTL(t *testing.T) {
	spec := sampleSpec()
	spec.TTL = 2
	p := MustBuild(spec)
	if v, _ := p.DecrementTTL(); v != 1 {
		t.Errorf("TTL = %d, want 1", v)
	}
	if v, _ := p.DecrementTTL(); v != 0 {
		t.Errorf("TTL = %d, want 0", v)
	}
	if v, _ := p.DecrementTTL(); v != 0 {
		t.Errorf("TTL saturation failed: %d", v)
	}
}

func TestFiveTupleReverse(t *testing.T) {
	ft := FiveTuple{SrcIP: IP4(1, 1, 1, 1), DstIP: IP4(2, 2, 2, 2), SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	r := ft.Reverse()
	if r.SrcIP != ft.DstIP || r.DstPort != ft.SrcPort || r.Proto != ft.Proto {
		t.Errorf("Reverse = %v", r)
	}
	if r.Reverse() != ft {
		t.Error("double Reverse is not identity")
	}
}

// Property: Build is deterministic and the parsed tuple always echoes
// the spec, for arbitrary tuples.
func TestQuickBuildEchoesSpec(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp uint16, udp bool, payload []byte) bool {
		proto := uint8(ProtoTCP)
		if udp {
			proto = ProtoUDP
		}
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p, err := Build(Spec{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto, Payload: payload})
		if err != nil {
			return false
		}
		ft, err := p.FiveTuple()
		if err != nil {
			return false
		}
		return ft == FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto} &&
			bytes.Equal(p.Payload(), payload) && p.VerifyChecksums()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: encap followed by decap restores the exact frame bytes.
func TestQuickEncapDecapIdentity(t *testing.T) {
	f := func(spi, seq uint32, tag uint16, payload []byte) bool {
		if len(payload) > 512 {
			payload = payload[:512]
		}
		spec := sampleSpec()
		spec.Payload = payload
		p, err := Build(spec)
		if err != nil {
			return false
		}
		orig := append([]byte(nil), p.Data()...)
		if p.EncapAH(spi, seq) != nil || p.EncapVLAN(tag) != nil {
			return false
		}
		if p.DecapVLAN() != nil || p.DecapAH() != nil {
			return false
		}
		return bytes.Equal(p.Data(), orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
