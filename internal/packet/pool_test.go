package packet

import "testing"

func poolPkt(t *testing.T) *Packet {
	t.Helper()
	return MustBuild(Spec{
		SrcIP: IP4(10, 0, 0, 1), DstIP: IP4(10, 0, 0, 2),
		SrcPort: 6000, DstPort: 80, Proto: ProtoUDP,
		Payload: []byte("pooled payload"),
	})
}

func TestPoolCloneMatchesClone(t *testing.T) {
	pool := NewPool()
	src := poolPkt(t)
	got := pool.Clone(src)
	want := src.Clone()
	if string(got.Data()) != string(want.Data()) {
		t.Fatal("pooled clone's frame differs from a plain Clone")
	}
	if got.Meta != want.Meta {
		t.Fatalf("pooled clone meta %+v, want %+v", got.Meta, want.Meta)
	}
}

func TestPoolPutResetsState(t *testing.T) {
	pool := NewPool()
	pkt := pool.Clone(poolPkt(t))
	pkt.Meta.Initial = true
	pkt.Meta.SeqInFlow = 99
	pool.Put(pkt)
	pool.Put(nil) // nil-safe

	recycled := pool.Get()
	if len(recycled.Data()) != 0 {
		t.Errorf("recycled packet kept %d frame bytes", len(recycled.Data()))
	}
	if recycled.Meta != (Meta{}) {
		t.Errorf("recycled packet kept meta %+v", recycled.Meta)
	}
}

func TestPoolCloneIsIndependent(t *testing.T) {
	pool := NewPool()
	src := poolPkt(t)
	cp := pool.Clone(src)
	// Mutating the clone must not touch the source.
	cp.Data()[0] ^= 0xff
	if src.Data()[0] == cp.Data()[0] {
		t.Fatal("pooled clone shares frame storage with its source")
	}
}

func TestSetFrameReusesCapacity(t *testing.T) {
	pkt := poolPkt(t)
	orig := cap(pkt.Data())
	pkt.SetFrame(pkt.Data()[:8])
	if cap(pkt.Data()) > orig {
		t.Fatalf("SetFrame grew capacity %d -> %d", orig, cap(pkt.Data()))
	}
	if len(pkt.Data()) != 8 {
		t.Fatalf("SetFrame length = %d, want 8", len(pkt.Data()))
	}
}

func TestPoolSteadyStateZeroAllocs(t *testing.T) {
	pool := NewPool()
	src := poolPkt(t)
	// Warm the pool so the descriptor and its frame buffer exist.
	pool.Put(pool.Clone(src))
	if allocs := testing.AllocsPerRun(200, func() {
		pkt := pool.Clone(src)
		pool.Put(pkt)
	}); allocs > 0 {
		t.Errorf("steady-state Clone/Put cycle allocates %.1f objects/op, want 0", allocs)
	}
}
