package packet

import (
	"encoding/binary"
	"fmt"
)

// Field identifies a modifiable packet-header field. The Modify header
// action (paper §IV-A1) is expressed as (Field, value) pairs, and the
// Global MAT consolidates them per §V-B.
type Field int

// The fields the substrate supports. Enum starts at one so that the
// zero value is invalid and accidental zero-initialised actions fail
// loudly.
const (
	// FieldSrcMAC is the 6-byte Ethernet source address.
	FieldSrcMAC Field = iota + 1
	// FieldDstMAC is the 6-byte Ethernet destination address.
	FieldDstMAC
	// FieldSrcIP is the 4-byte IPv4 source address.
	FieldSrcIP
	// FieldDstIP is the 4-byte IPv4 destination address.
	FieldDstIP
	// FieldTTL is the 1-byte IPv4 time-to-live.
	FieldTTL
	// FieldDSCP is the 1-byte IPv4 TOS/DSCP field.
	FieldDSCP
	// FieldSrcPort is the 2-byte transport source port.
	FieldSrcPort
	// FieldDstPort is the 2-byte transport destination port.
	FieldDstPort
)

// fieldNames is indexed by Field for String.
var fieldNames = [...]string{
	FieldSrcMAC:  "SrcMAC",
	FieldDstMAC:  "DstMAC",
	FieldSrcIP:   "SIP",
	FieldDstIP:   "DIP",
	FieldTTL:     "TTL",
	FieldDSCP:    "DSCP",
	FieldSrcPort: "SPort",
	FieldDstPort: "DPort",
}

// String returns the short field name used in the paper's examples
// (e.g. modify(DIP, DPort)).
func (f Field) String() string {
	if f < FieldSrcMAC || int(f) >= len(fieldNames) {
		return fmt.Sprintf("Field(%d)", int(f))
	}
	return fieldNames[f]
}

// Size returns the field width in bytes, or 0 for an invalid field.
func (f Field) Size() int {
	switch f {
	case FieldSrcMAC, FieldDstMAC:
		return 6
	case FieldSrcIP, FieldDstIP:
		return 4
	case FieldTTL, FieldDSCP:
		return 1
	case FieldSrcPort, FieldDstPort:
		return 2
	default:
		return 0
	}
}

// Valid reports whether f is one of the defined fields.
func (f Field) Valid() bool { return f.Size() != 0 }

// offset returns the field's byte offset within a parsed frame.
func (p *Packet) fieldOffset(f Field) (int, error) {
	if !p.parsed {
		return 0, ErrNotParsed
	}
	switch f {
	case FieldDstMAC:
		return 0, nil
	case FieldSrcMAC:
		return 6, nil
	case FieldDSCP:
		return p.hdr.IPOff + 1, nil
	case FieldTTL:
		return p.hdr.IPOff + 8, nil
	case FieldSrcIP:
		return p.hdr.IPOff + 12, nil
	case FieldDstIP:
		return p.hdr.IPOff + 16, nil
	case FieldSrcPort:
		return p.hdr.L4Off, nil
	case FieldDstPort:
		return p.hdr.L4Off + 2, nil
	default:
		return 0, fmt.Errorf("packet: invalid field %v", f)
	}
}

// Get reads a header field into a freshly allocated slice.
func (p *Packet) Get(f Field) ([]byte, error) {
	off, err := p.fieldOffset(f)
	if err != nil {
		return nil, err
	}
	out := make([]byte, f.Size())
	copy(out, p.data[off:off+f.Size()])
	return out, nil
}

// Set overwrites a header field. The value length must equal the field
// size. Checksums are NOT recomputed; callers batch modifications and
// call FinalizeChecksums once, matching the paper's consolidation of
// trailer fields at the end (§V-B).
func (p *Packet) Set(f Field, value []byte) error {
	if len(value) != f.Size() {
		return fmt.Errorf("packet: field %v needs %d bytes, got %d", f, f.Size(), len(value))
	}
	off, err := p.fieldOffset(f)
	if err != nil {
		return err
	}
	copy(p.data[off:off+f.Size()], value)
	return nil
}

// SrcIP returns the IPv4 source address of a parsed packet.
func (p *Packet) SrcIP() [4]byte { return p.ip4(12) }

// DstIP returns the IPv4 destination address of a parsed packet.
func (p *Packet) DstIP() [4]byte { return p.ip4(16) }

func (p *Packet) ip4(rel int) [4]byte {
	var a [4]byte
	if p.parsed {
		copy(a[:], p.data[p.hdr.IPOff+rel:p.hdr.IPOff+rel+4])
	}
	return a
}

// SrcPort returns the transport source port of a parsed packet.
func (p *Packet) SrcPort() uint16 {
	if !p.parsed {
		return 0
	}
	return binary.BigEndian.Uint16(p.data[p.hdr.L4Off : p.hdr.L4Off+2])
}

// DstPort returns the transport destination port of a parsed packet.
func (p *Packet) DstPort() uint16 {
	if !p.parsed {
		return 0
	}
	return binary.BigEndian.Uint16(p.data[p.hdr.L4Off+2 : p.hdr.L4Off+4])
}

// TTL returns the IPv4 TTL of a parsed packet.
func (p *Packet) TTL() uint8 {
	if !p.parsed {
		return 0
	}
	return p.data[p.hdr.IPOff+8]
}

// DecrementTTL decreases the TTL by one, saturating at zero. It
// returns the new value.
func (p *Packet) DecrementTTL() (uint8, error) {
	if !p.parsed {
		return 0, ErrNotParsed
	}
	off := p.hdr.IPOff + 8
	if p.data[off] > 0 {
		p.data[off]--
	}
	return p.data[off], nil
}

// PutUint16 and PutUint32 are conveniences for building field values.
func PutUint16(v uint16) []byte {
	b := make([]byte, 2)
	binary.BigEndian.PutUint16(b, v)
	return b
}

// PutUint32 encodes v as 4 big-endian bytes (e.g. an IPv4 address).
func PutUint32(v uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, v)
	return b
}

// IPBytes converts a [4]byte address to a slice for use with Set.
func IPBytes(ip [4]byte) []byte { return []byte{ip[0], ip[1], ip[2], ip[3]} }
