package classifier

import (
	"testing"

	"github.com/fastpathnfv/speedybox/internal/flow"
	"github.com/fastpathnfv/speedybox/internal/packet"
)

func tcpPkt(t *testing.T, flags uint8, payload string) *packet.Packet {
	t.Helper()
	return packet.MustBuild(packet.Spec{
		SrcIP: packet.IP4(10, 0, 0, 1), DstIP: packet.IP4(10, 0, 0, 2),
		SrcPort: 5000, DstPort: 80, Proto: packet.ProtoTCP,
		TCPFlags: flags, Payload: []byte(payload),
	})
}

func alwaysRule(flow.FID) bool { return true }
func neverRule(flow.FID) bool  { return false }

func TestTCPLifecycle(t *testing.T) {
	c := New(flow.NewTable())
	installed := false
	hasRule := func(flow.FID) bool { return installed }

	// SYN: handshake.
	r, err := c.Classify(tcpPkt(t, packet.TCPFlagSYN, ""), hasRule)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindHandshake || !r.NewFlow {
		t.Errorf("SYN: %+v", r)
	}
	fid := r.FID

	// Bare ACK completing the handshake: still handshake kind.
	r, err = c.Classify(tcpPkt(t, packet.TCPFlagACK, ""), hasRule)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindHandshake || r.NewFlow || r.FID != fid {
		t.Errorf("handshake ACK: %+v", r)
	}

	// First data packet: initial.
	pkt := tcpPkt(t, packet.TCPFlagACK|packet.TCPFlagPSH, "GET /")
	r, err = c.Classify(pkt, hasRule)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindInitial {
		t.Errorf("first data: %+v, want initial", r)
	}
	if !pkt.Meta.Initial || !pkt.Meta.HasFID || pkt.Meta.FID != uint32(fid) {
		t.Errorf("meta = %+v", pkt.Meta)
	}

	// No rule installed yet: next data packet re-runs as initial.
	r, _ = c.Classify(tcpPkt(t, packet.TCPFlagACK, "again"), hasRule)
	if r.Kind != KindInitial {
		t.Errorf("pre-rule data: %+v, want initial (safe slow path)", r)
	}

	// Rule installed: subsequent.
	installed = true
	r, _ = c.Classify(tcpPkt(t, packet.TCPFlagACK, "more"), hasRule)
	if r.Kind != KindSubsequent {
		t.Errorf("post-rule data: %+v, want subsequent", r)
	}

	// FIN: final.
	finPkt := tcpPkt(t, packet.TCPFlagFIN|packet.TCPFlagACK, "")
	r, _ = c.Classify(finPkt, hasRule)
	if r.Kind != KindFinal || !finPkt.Meta.Final {
		t.Errorf("FIN: %+v meta=%+v", r, finPkt.Meta)
	}
	entry, ok := c.Flows().LookupFID(fid)
	if !ok || entry.State != flow.StateClosed {
		t.Errorf("flow state = %+v", entry)
	}
	if !c.Teardown(fid) {
		t.Error("Teardown failed")
	}
	if c.Flows().Len() != 0 {
		t.Error("flow survived teardown")
	}
}

func TestRSTIsFinal(t *testing.T) {
	c := New(flow.NewTable())
	r, err := c.Classify(tcpPkt(t, packet.TCPFlagRST, ""), neverRule)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindFinal {
		t.Errorf("RST: %+v, want final", r)
	}
}

func TestUDPFirstPacketIsInitial(t *testing.T) {
	c := New(flow.NewTable())
	udp := func(payload string) *packet.Packet {
		return packet.MustBuild(packet.Spec{
			SrcIP: packet.IP4(1, 1, 1, 1), DstIP: packet.IP4(2, 2, 2, 2),
			SrcPort: 9999, DstPort: 53, Proto: packet.ProtoUDP, Payload: []byte(payload),
		})
	}
	r, err := c.Classify(udp("query"), neverRule)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindInitial {
		t.Errorf("UDP first: %+v, want initial", r)
	}
	r, _ = c.Classify(udp("query2"), alwaysRule)
	if r.Kind != KindSubsequent {
		t.Errorf("UDP second with rule: %+v, want subsequent", r)
	}
}

func TestMidStreamJoinPromotesToEstablished(t *testing.T) {
	// Data packets for a connection we never saw a SYN for (e.g. the
	// trace starts mid-connection): treated as initial directly.
	c := New(flow.NewTable())
	r, err := c.Classify(tcpPkt(t, packet.TCPFlagACK, "mid-stream data"), neverRule)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindInitial {
		t.Errorf("mid-stream: %+v, want initial", r)
	}
}

func TestFIDStableAcrossModification(t *testing.T) {
	// Invariant 7: the FID assigned at ingress survives header
	// rewrites because it lives in descriptor metadata.
	c := New(flow.NewTable())
	pkt := tcpPkt(t, packet.TCPFlagACK, "data")
	r, err := c.Classify(pkt, neverRule)
	if err != nil {
		t.Fatal(err)
	}
	if err := pkt.Set(packet.FieldDstIP, []byte{99, 99, 99, 99}); err != nil {
		t.Fatal(err)
	}
	if err := pkt.Set(packet.FieldDstPort, packet.PutUint16(8080)); err != nil {
		t.Fatal(err)
	}
	if pkt.Meta.FID != uint32(r.FID) {
		t.Error("FID metadata changed after header rewrite")
	}
}

func TestDistinctFlowsGetDistinctFIDs(t *testing.T) {
	c := New(flow.NewTable())
	fids := make(map[flow.FID]bool)
	for i := 0; i < 50; i++ {
		p := packet.MustBuild(packet.Spec{
			SrcIP: packet.IP4(10, 0, byte(i), 1), DstIP: packet.IP4(10, 1, 0, 1),
			SrcPort: uint16(1000 + i), DstPort: 80, Proto: packet.ProtoTCP,
			TCPFlags: packet.TCPFlagACK, Payload: []byte("x"),
		})
		r, err := c.Classify(p, neverRule)
		if err != nil {
			t.Fatal(err)
		}
		if fids[r.FID] {
			t.Fatalf("FID %v reused across distinct flows", r.FID)
		}
		fids[r.FID] = true
	}
}

func TestClassifyUnparseable(t *testing.T) {
	c := New(flow.NewTable())
	if _, err := c.Classify(packet.New([]byte{1, 2, 3}), neverRule); err == nil {
		t.Error("Classify accepted garbage frame")
	}
}

func TestClassifyNilHasRule(t *testing.T) {
	// A nil hasRule (SpeedyBox disabled) must treat established
	// packets as initial, i.e. always slow-path.
	c := New(flow.NewTable())
	r, err := c.Classify(tcpPkt(t, packet.TCPFlagACK, "x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindInitial {
		t.Errorf("nil hasRule: %+v", r)
	}
}

func TestFlowCountersUpdated(t *testing.T) {
	c := New(flow.NewTable())
	p1 := tcpPkt(t, packet.TCPFlagACK, "abc")
	r, err := c.Classify(p1, neverRule)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify(tcpPkt(t, packet.TCPFlagACK, "defg"), neverRule); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Flows().LookupFID(r.FID)
	if e.Packets != 2 {
		t.Errorf("Packets = %d, want 2", e.Packets)
	}
	if e.Bytes == 0 {
		t.Error("Bytes not accumulated")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindHandshake: "handshake", KindInitial: "initial",
		KindSubsequent: "subsequent", KindFinal: "final",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}
