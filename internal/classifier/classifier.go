// Package classifier implements SpeedyBox's Packet Classifier (paper
// §III, §VI-B): it hashes the 5-tuple into the 20-bit FID, attaches it
// as descriptor metadata, tracks the TCP lifecycle to distinguish
// handshake, initial, subsequent and final packets, and drives
// stale-rule cleanup on FIN/RST.
package classifier

import (
	"fmt"
	"sync/atomic"

	"github.com/fastpathnfv/speedybox/internal/flow"
	"github.com/fastpathnfv/speedybox/internal/packet"
)

// Kind is the classifier's routing decision for one packet.
type Kind int

// Packet kinds. The engine routes Initial (and Handshake) packets to
// the original service chain and Subsequent packets to the Global MAT.
const (
	// KindHandshake is a TCP connection-establishment packet (SYN or
	// the completing ACK); it traverses the original chain but does
	// not trigger consolidation, because the paper defines the
	// initial packet as the first packet after establishment (§III).
	KindHandshake Kind = iota + 1
	// KindInitial is the flow's initial packet: recording and
	// consolidation happen around it.
	KindInitial
	// KindSubsequent packets take the fast path when a Global MAT
	// rule exists.
	KindSubsequent
	// KindFinal is a FIN/RST packet: after processing, the flow's
	// rules are deleted from the Global MAT and all Local MATs
	// (§VI-B, "Tracking Flow State").
	KindFinal
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindHandshake:
		return "handshake"
	case KindInitial:
		return "initial"
	case KindSubsequent:
		return "subsequent"
	case KindFinal:
		return "final"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Result is the classification of one packet.
type Result struct {
	// FID is the flow identifier, also written into pkt.Meta.
	FID flow.FID
	// Kind is the routing decision.
	Kind Kind
	// NewFlow reports that this packet created the flow-table entry.
	NewFlow bool
	// Reused reports that this packet is a SYN restarting a tracked
	// flow that was already past the handshake (5-tuple reuse without
	// an observed FIN/RST). The previous connection's consolidated
	// rule and events are stale and must be torn down before the new
	// connection's packets are processed — otherwise its established
	// packets would classify as subsequent and execute the *old*
	// connection's recorded actions.
	Reused bool
}

// Classifier assigns FIDs and tracks flow lifecycle. It is safe for
// concurrent use (its state lives in the flow table).
type Classifier struct {
	flows *flow.Table
	// seq is the logical clock: one tick per classified packet. Flow
	// entries stamp it into LastSeen so idle flows can be expired.
	seq atomic.Uint64
}

// New returns a classifier over the given flow table.
func New(flows *flow.Table) *Classifier {
	return &Classifier{flows: flows}
}

// Flows exposes the underlying table (the engine tears flows down
// through it).
func (c *Classifier) Flows() *flow.Table { return c.flows }

// Classify parses the packet if necessary, assigns its FID and decides
// its kind. hasRule reports whether the Global MAT already has a rule
// for the flow, which distinguishes the initial packet (first
// established packet without a rule) from subsequent ones — including
// the case where several established packets race in before
// consolidation completes: each is treated as (re-)initial and
// traverses the original chain, which is always safe.
func (c *Classifier) Classify(pkt *packet.Packet, hasRule func(flow.FID) bool) (Result, error) {
	if !pkt.Parsed() {
		if err := pkt.Parse(); err != nil {
			return Result{}, fmt.Errorf("classifier: %w", err)
		}
	}
	ft, err := pkt.FiveTuple()
	if err != nil {
		return Result{}, fmt.Errorf("classifier: %w", err)
	}

	entry, existed := c.flows.Lookup(ft)
	if !existed {
		entry, err = c.flows.Insert(ft)
		if err != nil {
			return Result{}, fmt.Errorf("classifier: %w", err)
		}
	}
	fid := entry.FID
	pkt.Meta.FID = uint32(fid)
	pkt.Meta.HasFID = true

	res := Result{FID: fid, NewFlow: !existed}

	flags, isTCP := pkt.TCPFlags()
	final := isTCP && flags&(packet.TCPFlagFIN|packet.TCPFlagRST) != 0

	// The state machine runs on the snapshot and commits the result:
	// RSS partitioning makes this classifier call the flow's only
	// writer, so the read-modify-write needs no lock held across it,
	// and the closure-free shape keeps the snapshot on the stack.
	now := c.seq.Add(1)
	entry.Packets++
	entry.Bytes += uint64(pkt.Len())
	entry.LastSeen = now
	switch {
	case final:
		entry.State = flow.StateClosed
	case !isTCP:
		// UDP flows are established by their first packet.
		entry.State = flow.StateEstablished
	case flags&packet.TCPFlagSYN != 0:
		// A SYN on a flow already past the handshake is 5-tuple
		// reuse (the FIN/RST of the previous connection was never
		// seen): the connection restarts, and the caller must tear
		// down the previous connection's consolidated state.
		if entry.State != flow.StateHandshake {
			res.Reused = true
		}
		entry.State = flow.StateHandshake
	case entry.State == flow.StateHandshake && flags&packet.TCPFlagACK != 0 && len(pkt.Payload()) == 0:
		// The bare ACK completing the 3-way handshake: the
		// connection is now established, but per §III the
		// *next* packet is the initial packet.
		entry.State = flow.StateEstablished
		res.Kind = KindHandshake
	case entry.State == flow.StateHandshake:
		// Data before the handshake completed (or we joined the
		// connection mid-stream): promote to established.
		entry.State = flow.StateEstablished
	default:
		entry.State = flow.StateEstablished
	}
	c.flows.Commit(fid, &entry)

	if res.Kind != 0 {
		return res, nil // already decided (handshake-completing ACK)
	}
	switch {
	case final:
		pkt.Meta.Final = true
		res.Kind = KindFinal
	case isTCP && flags&packet.TCPFlagSYN != 0:
		res.Kind = KindHandshake
	case hasRule != nil && hasRule(fid):
		res.Kind = KindSubsequent
	default:
		pkt.Meta.Initial = true
		res.Kind = KindInitial
	}
	return res, nil
}

// ClassifyData is the batched fast classification. It handles the
// common case — a plain data packet (no SYN/FIN/RST) of an
// established, already-tracked flow — with one flow-table lock
// acquisition and no closure allocation, assigning the FID and
// applying the per-packet bookkeeping. The Kind in the returned Result
// is left undecided (zero): the batch engine resolves Subsequent
// versus Initial against its rule cache, which replaces the hasRule
// probe of the scalar path.
//
// For every other packet shape — unparseable, handshake, teardown,
// untracked or not-yet-established flow — it reports ok=false without
// mutating the flow table or consuming a logical-clock tick, and the
// caller routes the packet through the full Classify state machine.
func (c *Classifier) ClassifyData(pkt *packet.Packet) (Result, bool) {
	if !pkt.Parsed() {
		if err := pkt.Parse(); err != nil {
			return Result{}, false // full Classify reproduces the error
		}
	}
	ft, err := pkt.FiveTuple()
	if err != nil {
		return Result{}, false
	}
	if flags, isTCP := pkt.TCPFlags(); isTCP &&
		flags&(packet.TCPFlagSYN|packet.TCPFlagFIN|packet.TCPFlagRST) != 0 {
		return Result{}, false
	}
	entry, ok := c.flows.TouchEstablished(ft, uint64(pkt.Len()), &c.seq)
	if !ok {
		return Result{}, false
	}
	pkt.Meta.FID = uint32(entry.FID)
	pkt.Meta.HasFID = true
	return Result{FID: entry.FID}, true
}

// Teardown removes the flow from the flow table after FIN/RST
// processing; the engine also deletes the MAT rules.
func (c *Classifier) Teardown(fid flow.FID) bool {
	return c.flows.Remove(fid)
}

// Now returns the logical clock: the number of packets classified so
// far.
func (c *Classifier) Now() uint64 { return c.seq.Load() }

// SeqClock exposes the logical clock itself. The batched data path
// ticks it directly for cache-classified packets, bypassing the full
// state machine while producing the exact per-packet values scalar
// classification would. Ticks must stay one-per-packet in arrival
// order: degradation-ladder deadlines are expressed in these ticks, so
// a clock that runs ahead of processing would skew backoff decisions
// relative to the scalar reference.
func (c *Classifier) SeqClock() *atomic.Uint64 { return &c.seq }

// RestoreClock forces the logical clock forward to at least v. A
// restored engine resumes the checkpointed clock so LastSeen stamps in
// restored flow entries stay comparable to post-restore ticks — a
// clock restarting at zero would make every restored flow look
// maximally idle and ExpireIdle would reap it instantly.
func (c *Classifier) RestoreClock(v uint64) {
	for {
		cur := c.seq.Load()
		if cur >= v || c.seq.CompareAndSwap(cur, v) {
			return
		}
	}
}
