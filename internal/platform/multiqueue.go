package platform

import (
	"fmt"
	"sync"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/flow"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/telemetry"
)

// MultiQueue models an RSS-style multi-queue NIC feeding one engine
// from several cores: packets are hash-partitioned by 5-tuple across W
// worker queues, and each worker drains its queue by calling the
// platform's Process. Because the partition key is the flow hash, all
// packets of a flow land on the same worker, which preserves per-flow
// ordering — the same guarantee hardware RSS gives — while disjoint
// flows proceed in parallel on the engine's FID-sharded state.
type MultiQueue struct {
	p       Platform
	workers int
	batch   int

	// Per-worker telemetry, nil slices when the wrapped engine has no
	// hub: queueDepth[w] is set at partition time, workerPkts[w] counts
	// packets the worker completed.
	queueDepth []*telemetry.Gauge
	workerPkts []*telemetry.Counter
}

// NewMultiQueue wraps the platform with a workers-way RSS dispatcher.
func NewMultiQueue(p Platform, workers int) (*MultiQueue, error) {
	if p == nil {
		return nil, fmt.Errorf("platform: multiqueue: nil platform")
	}
	if workers < 1 {
		return nil, fmt.Errorf("platform: multiqueue: workers must be >= 1, got %d", workers)
	}
	m := &MultiQueue{p: p, workers: workers}
	if hub := p.Engine().Telemetry(); hub != nil {
		m.queueDepth = make([]*telemetry.Gauge, workers)
		m.workerPkts = make([]*telemetry.Counter, workers)
		for w := 0; w < workers; w++ {
			m.queueDepth[w] = hub.Registry.Gauge(
				fmt.Sprintf(`speedybox_mq_queue_depth{worker="%d"}`, w),
				"Packets partitioned to the worker's queue in the current run")
			m.workerPkts[w] = hub.Registry.Counter(
				fmt.Sprintf(`speedybox_mq_worker_packets_total{worker="%d"}`, w),
				"Packets completed by the worker")
		}
	}
	return m, nil
}

// Workers returns the configured queue count.
func (m *MultiQueue) Workers() int { return m.workers }

// SetBatchSize switches the workers to batched draining: each worker
// owns a Batch (rule cache, pooled results) and feeds its queue through
// the platform's ProcessBatch in n-packet vectors. n <= 1 keeps the
// scalar per-packet loop; 0 is scalar, matching NewMultiQueue's
// default. Call before Run, not during one.
func (m *MultiQueue) SetBatchSize(n int) { m.batch = n }

// BatchSize returns the configured vector size (0 or 1 = scalar).
func (m *MultiQueue) BatchSize() int { return m.batch }

// Platform returns the wrapped platform.
func (m *MultiQueue) Platform() Platform { return m.p }

// mqPartial is one worker's private slice of the run aggregate; the
// partials are merged after all workers join, so workers never share a
// counter or map during the run.
type mqPartial struct {
	packets     int
	drops       int
	workCycles  []uint64
	latencies   []uint64
	bottlenecks []uint64
	flowCycles  map[flow.FID]uint64
	err         error
}

// add folds one measurement into the partial.
func (part *mqPartial) add(meas *Measurement) {
	part.packets++
	if meas.Result.Verdict == core.VerdictDrop {
		part.drops++
	}
	part.workCycles = append(part.workCycles, meas.WorkCycles)
	part.latencies = append(part.latencies, meas.LatencyCycles)
	part.bottlenecks = append(part.bottlenecks, meas.BottleneckCycles)
	part.flowCycles[meas.Result.FID] += meas.LatencyCycles
}

// drainBatched feeds one worker's queue through the platform in
// m.batch-packet vectors, reusing a worker-owned Batch (rule cache and
// result storage persist across vectors of the same queue — by the RSS
// partition, exactly the packets of the worker's own flows).
func (m *MultiQueue) drainBatched(w int, q []*packet.Packet, part *mqPartial) {
	b := NewBatch(m.batch)
	for off := 0; off < len(q); off += m.batch {
		end := off + m.batch
		if end > len(q) {
			end = len(q)
		}
		ms, err := m.p.ProcessBatch(q[off:end], b)
		if err != nil {
			part.err = fmt.Errorf("platform %s: queue %d batch at packet %d: %w",
				m.p.Name(), w, off, err)
			return
		}
		for i := range ms {
			part.add(&ms[i])
		}
		if m.workerPkts != nil {
			m.workerPkts[w].Add(uint64(len(ms)))
		}
	}
}

// Run partitions the trace across the workers and processes the queues
// concurrently, aggregating the same measurements as the serial Run.
// Packet buffers are consumed (the platform mutates or drops them).
// Packets that cannot be partitioned (unparseable) are sent to queue 0,
// where Process reports the parse error. The first worker error (by
// worker index) is returned; statistics are a merge of all workers'
// completed packets.
func (m *MultiQueue) Run(pkts []*packet.Packet) (*RunResult, error) {
	queues := make([][]*packet.Packet, m.workers)
	for _, pkt := range pkts {
		w := 0
		if ft, err := pkt.FiveTuple(); err == nil {
			w = int(uint32(flow.HashTuple(ft)) % uint32(m.workers))
		}
		queues[w] = append(queues[w], pkt)
	}
	if m.queueDepth != nil {
		for w, q := range queues {
			m.queueDepth[w].Set(int64(len(q)))
		}
	}

	partials := make([]mqPartial, m.workers)
	var wg sync.WaitGroup
	for w := 0; w < m.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := &partials[w]
			part.flowCycles = make(map[flow.FID]uint64)
			if m.batch > 1 {
				m.drainBatched(w, queues[w], part)
				return
			}
			for i, pkt := range queues[w] {
				meas, err := m.p.Process(pkt)
				if err != nil {
					part.err = fmt.Errorf("platform %s: queue %d packet %d: %w",
						m.p.Name(), w, i, err)
					return
				}
				part.add(&meas)
				if m.workerPkts != nil {
					m.workerPkts[w].Inc()
				}
			}
		}(w)
	}
	wg.Wait()

	res := &RunResult{
		FlowCycles:  make(map[flow.FID]uint64),
		QueueDepths: make([]int, m.workers),
		model:       m.p.Model(),
	}
	for w, q := range queues {
		res.QueueDepths[w] = len(q)
	}
	var firstErr error
	for w := range partials {
		part := &partials[w]
		if part.err != nil && firstErr == nil {
			firstErr = part.err
		}
		res.Packets += part.packets
		res.Drops += part.drops
		res.WorkCycles = append(res.WorkCycles, part.workCycles...)
		res.Latencies = append(res.Latencies, part.latencies...)
		res.Bottlenecks = append(res.Bottlenecks, part.bottlenecks...)
		for fid, c := range part.flowCycles {
			res.FlowCycles[fid] += c
		}
	}
	res.Stats = m.p.Engine().Stats()
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}
