package platform

import (
	"fmt"
	"sync"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/flow"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/telemetry"
)

// MultiQueue models an RSS-style multi-queue NIC feeding one engine
// from several cores: packets are hash-partitioned by 5-tuple across W
// worker queues, and each worker drains its queue by calling the
// platform's Process. Because the partition key is the flow hash, all
// packets of a flow land on the same worker, which preserves per-flow
// ordering — the same guarantee hardware RSS gives — while disjoint
// flows proceed in parallel on the engine's FID-sharded state.
type MultiQueue struct {
	p       Platform
	workers int
	batch   int

	// Multi-chain fair-share mode (SetClasses): each worker splits its
	// queue into per-class subqueues via route and drains them
	// weighted-round-robin through the class platforms.
	classes []ChainClass
	route   func(*packet.Packet) int

	// Per-worker telemetry, nil slices when the wrapped engine has no
	// hub: queueDepth[w] is set at partition time, workerPkts[w] counts
	// packets the worker completed.
	queueDepth []*telemetry.Gauge
	workerPkts []*telemetry.Counter
}

// ChainClass pairs one chain's platform with a scheduling weight for
// fair-share draining in a multi-chain topology.
type ChainClass struct {
	// Platform processes the class's packets (one chain's engine).
	Platform Platform
	// Weight is the class's relative share, >= 1: per scheduling round
	// a class may process up to Weight×quantum packets before yielding
	// to the next class (quantum = the batch size, min 1). A tenant
	// flooding one chain therefore delays other chains' packets by at
	// most one round of bounded quanta, not by its whole backlog.
	Weight int
}

// NewMultiQueue wraps the platform with a workers-way RSS dispatcher.
func NewMultiQueue(p Platform, workers int) (*MultiQueue, error) {
	if p == nil {
		return nil, fmt.Errorf("platform: multiqueue: nil platform")
	}
	if workers < 1 {
		return nil, fmt.Errorf("platform: multiqueue: workers must be >= 1, got %d", workers)
	}
	m := &MultiQueue{p: p, workers: workers}
	if hub := p.Engine().Telemetry(); hub != nil {
		m.queueDepth = make([]*telemetry.Gauge, workers)
		m.workerPkts = make([]*telemetry.Counter, workers)
		for w := 0; w < workers; w++ {
			m.queueDepth[w] = hub.Registry.Gauge(
				fmt.Sprintf(`speedybox_mq_queue_depth{worker="%d"}`, w),
				"Packets partitioned to the worker's queue in the current run")
			m.workerPkts[w] = hub.Registry.Counter(
				fmt.Sprintf(`speedybox_mq_worker_packets_total{worker="%d"}`, w),
				"Packets completed by the worker")
		}
	}
	return m, nil
}

// Workers returns the configured queue count.
func (m *MultiQueue) Workers() int { return m.workers }

// SetBatchSize switches the workers to batched draining: each worker
// owns a Batch (rule cache, pooled results) and feeds its queue through
// the platform's ProcessBatch in n-packet vectors. n <= 1 keeps the
// scalar per-packet loop; 0 is scalar, matching NewMultiQueue's
// default. Call before Run, not during one.
func (m *MultiQueue) SetBatchSize(n int) { m.batch = n }

// BatchSize returns the configured vector size (0 or 1 = scalar).
func (m *MultiQueue) BatchSize() int { return m.batch }

// Platform returns the wrapped platform.
func (m *MultiQueue) Platform() Platform { return m.p }

// SetClasses switches the dispatcher to multi-chain fair-share mode:
// route maps each packet to a class index (out-of-range falls back to
// class 0, whose platform also reports parse errors), and every worker
// drains its per-class subqueues weighted-round-robin through the
// class platforms instead of the wrapped one. Flow-hash partitioning
// is unchanged — a flow still lands on exactly one worker, and because
// routing is flow-stable, on exactly one class there — so per-flow
// ordering survives; only cross-chain interleaving changes, which no
// chain can observe. An empty classes slice returns to single-chain
// mode. Call before Run, not during one.
func (m *MultiQueue) SetClasses(classes []ChainClass, route func(*packet.Packet) int) error {
	if len(classes) == 0 {
		m.classes, m.route = nil, nil
		return nil
	}
	if route == nil {
		return fmt.Errorf("platform: multiqueue: classes without a route function")
	}
	for i, c := range classes {
		if c.Platform == nil {
			return fmt.Errorf("platform: multiqueue: class %d has a nil platform", i)
		}
		if c.Weight < 1 {
			return fmt.Errorf("platform: multiqueue: class %d weight must be >= 1, got %d", i, c.Weight)
		}
	}
	m.classes = classes
	m.route = route
	return nil
}

// partition maps a flow's home FID (flow.HashTuple) to a worker queue.
// For worker counts up to the engine's shard count, the mapping groups
// whole state shards into contiguous per-worker ranges: the engine
// shards every per-flow structure — flow table, Global MAT, stats,
// degradation ladder — by the FID's low ShardCount bits, and flow-table
// collision probing advances in ShardCount strides, so those bits are
// stable for every FID a flow can end up with. Each shard (and each
// shard's mutexes and cache lines) is then touched by exactly one
// worker for the whole run instead of ping-ponging between cores.
// Worker counts above the shard count cannot own whole shards and fall
// back to plain modulo.
func (m *MultiQueue) partition(home flow.FID) int {
	w := uint32(m.workers)
	if w <= flow.ShardCount {
		shard := uint32(home) & (flow.ShardCount - 1)
		return int(shard * w / flow.ShardCount)
	}
	return int(uint32(home) % w)
}

// drainClasses feeds one worker's queue through the class platforms in
// weighted-round-robin order: per round, class c processes up to
// Weight×quantum of its own backlog, then yields. Packets keep their
// arrival order within a class (per-flow order), while classes
// interleave at quantum granularity — the fair-share guarantee.
func (m *MultiQueue) drainClasses(w int, q []*packet.Packet, part *mqPartial) {
	nc := len(m.classes)
	sub := make([][]*packet.Packet, nc)
	for _, pkt := range q {
		c := m.route(pkt)
		if c < 0 || c >= nc {
			c = 0
		}
		sub[c] = append(sub[c], pkt)
	}
	quantum := m.batch
	if quantum < 1 {
		quantum = 1
	}
	batches := make([]*Batch, nc)
	off := make([]int, nc)
	remaining := len(q)
	for remaining > 0 {
		for c := 0; c < nc && part.err == nil; c++ {
			budget := m.classes[c].Weight * quantum
			for budget > 0 && off[c] < len(sub[c]) {
				end := off[c] + budget
				if m.batch > 1 && end > off[c]+m.batch {
					end = off[c] + m.batch
				}
				if end > len(sub[c]) {
					end = len(sub[c])
				}
				span := sub[c][off[c]:end]
				if m.batch > 1 {
					if batches[c] == nil {
						batches[c] = NewBatch(m.batch)
					}
					ms, err := m.classes[c].Platform.ProcessBatch(span, batches[c])
					if err != nil {
						part.err = fmt.Errorf("platform %s: queue %d class %d batch at packet %d: %w",
							m.classes[c].Platform.Name(), w, c, off[c], err)
						return
					}
					for i := range ms {
						part.add(&ms[i])
					}
				} else {
					for i, pkt := range span {
						meas, err := m.classes[c].Platform.Process(pkt)
						if err != nil {
							part.err = fmt.Errorf("platform %s: queue %d class %d packet %d: %w",
								m.classes[c].Platform.Name(), w, c, off[c]+i, err)
							return
						}
						part.add(&meas)
					}
				}
				if m.workerPkts != nil {
					m.workerPkts[w].Add(uint64(len(span)))
				}
				budget -= len(span)
				off[c] = end
				remaining -= len(span)
			}
		}
		if part.err != nil {
			return
		}
	}
}

// mqPartial is one worker's private slice of the run aggregate; the
// partials are merged after all workers join, so workers never share a
// counter or map during the run.
type mqPartial struct {
	packets     int
	drops       int
	workCycles  []uint64
	latencies   []uint64
	bottlenecks []uint64
	flowCycles  map[flow.FID]uint64
	err         error
}

// add folds one measurement into the partial.
func (part *mqPartial) add(meas *Measurement) {
	part.packets++
	if meas.Result.Verdict == core.VerdictDrop {
		part.drops++
	}
	part.workCycles = append(part.workCycles, meas.WorkCycles)
	part.latencies = append(part.latencies, meas.LatencyCycles)
	part.bottlenecks = append(part.bottlenecks, meas.BottleneckCycles)
	part.flowCycles[meas.Result.FID] += meas.LatencyCycles
}

// drainBatched feeds one worker's queue through the platform in
// m.batch-packet vectors, reusing a worker-owned Batch (rule cache and
// result storage persist across vectors of the same queue — by the RSS
// partition, exactly the packets of the worker's own flows).
func (m *MultiQueue) drainBatched(w int, q []*packet.Packet, part *mqPartial) {
	b := NewBatch(m.batch)
	for off := 0; off < len(q); off += m.batch {
		end := off + m.batch
		if end > len(q) {
			end = len(q)
		}
		ms, err := m.p.ProcessBatch(q[off:end], b)
		if err != nil {
			part.err = fmt.Errorf("platform %s: queue %d batch at packet %d: %w",
				m.p.Name(), w, off, err)
			return
		}
		for i := range ms {
			part.add(&ms[i])
		}
		if m.workerPkts != nil {
			m.workerPkts[w].Add(uint64(len(ms)))
		}
	}
}

// Run partitions the trace across the workers and processes the queues
// concurrently, aggregating the same measurements as the serial Run.
// Packet buffers are consumed (the platform mutates or drops them).
// Packets that cannot be partitioned (unparseable) are sent to queue 0,
// where Process reports the parse error. The first worker error (by
// worker index) is returned; statistics are a merge of all workers'
// completed packets.
func (m *MultiQueue) Run(pkts []*packet.Packet) (*RunResult, error) {
	queues := make([][]*packet.Packet, m.workers)
	for _, pkt := range pkts {
		w := 0
		if ft, err := pkt.FiveTuple(); err == nil {
			w = m.partition(flow.HashTuple(ft))
		}
		queues[w] = append(queues[w], pkt)
	}
	if m.queueDepth != nil {
		for w, q := range queues {
			m.queueDepth[w].Set(int64(len(q)))
		}
	}

	partials := make([]mqPartial, m.workers)
	var wg sync.WaitGroup
	for w := 0; w < m.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := &partials[w]
			part.flowCycles = make(map[flow.FID]uint64)
			if m.classes != nil {
				m.drainClasses(w, queues[w], part)
				return
			}
			if m.batch > 1 {
				m.drainBatched(w, queues[w], part)
				return
			}
			for i, pkt := range queues[w] {
				meas, err := m.p.Process(pkt)
				if err != nil {
					part.err = fmt.Errorf("platform %s: queue %d packet %d: %w",
						m.p.Name(), w, i, err)
					return
				}
				part.add(&meas)
				if m.workerPkts != nil {
					m.workerPkts[w].Inc()
				}
			}
		}(w)
	}
	wg.Wait()

	res := &RunResult{
		FlowCycles:  make(map[flow.FID]uint64),
		QueueDepths: make([]int, m.workers),
		model:       m.p.Model(),
	}
	for w, q := range queues {
		res.QueueDepths[w] = len(q)
	}
	var firstErr error
	for w := range partials {
		part := &partials[w]
		if part.err != nil && firstErr == nil {
			firstErr = part.err
		}
		res.Packets += part.packets
		res.Drops += part.drops
		res.WorkCycles = append(res.WorkCycles, part.workCycles...)
		res.Latencies = append(res.Latencies, part.latencies...)
		res.Bottlenecks = append(res.Bottlenecks, part.bottlenecks...)
		for fid, c := range part.flowCycles {
			res.FlowCycles[fid] += c
		}
	}
	if m.classes != nil {
		for _, c := range m.classes {
			res.Stats.Add(c.Platform.Engine().Stats())
		}
	} else {
		res.Stats = m.p.Engine().Stats()
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}
