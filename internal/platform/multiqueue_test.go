package platform

import (
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/cost"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// engPlatform drives a real engine with a trivial latency formula, so
// multi-queue runs exercise the full classify/record/consolidate path.
type engPlatform struct {
	eng *core.Engine
}

func (p *engPlatform) Name() string         { return "eng" }
func (p *engPlatform) Engine() *core.Engine { return p.eng }
func (p *engPlatform) Model() *cost.Model   { return p.eng.Model() }
func (p *engPlatform) Close() error         { return nil }

func (p *engPlatform) Process(pkt *packet.Packet) (Measurement, error) {
	res, err := p.eng.ProcessPacket(pkt)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Result:           res,
		WorkCycles:       res.WorkCycles,
		LatencyCycles:    res.WorkCycles + 100,
		BottleneckCycles: res.WorkCycles + 100,
	}, nil
}

func (p *engPlatform) ProcessBatch(pkts []*packet.Packet, b *Batch) ([]Measurement, error) {
	results, err := p.eng.ProcessBatch(pkts, b.Core)
	if err != nil {
		return nil, err
	}
	ms := b.Measurements(len(results))
	for i, res := range results {
		ms[i] = Measurement{
			Result:           res,
			WorkCycles:       res.WorkCycles,
			LatencyCycles:    res.WorkCycles + 100,
			BottleneckCycles: res.WorkCycles + 100,
		}
	}
	return ms, nil
}

// dropNF deterministically drops one quarter of the flows by FID, so
// serial and multi-queue runs must agree on the drop count.
type dropNF struct{}

func (dropNF) Name() string { return "drop" }
func (dropNF) Process(ctx *core.Ctx, pkt *packet.Packet) (core.Verdict, error) {
	if ctx.FID%4 == 0 {
		return core.VerdictDrop, nil
	}
	return core.VerdictForward, nil
}

// orderNF records the arrival order of packet buffers per 5-tuple.
type orderNF struct {
	mu   sync.Mutex
	seen map[packet.FiveTuple][]*packet.Packet
}

func (o *orderNF) Name() string { return "order" }
func (o *orderNF) Process(ctx *core.Ctx, pkt *packet.Packet) (core.Verdict, error) {
	ft, err := pkt.FiveTuple()
	if err != nil {
		return 0, err
	}
	o.mu.Lock()
	o.seen[ft] = append(o.seen[ft], pkt)
	o.mu.Unlock()
	return core.VerdictForward, nil
}

func testTrace(t *testing.T) []*packet.Packet {
	t.Helper()
	tr, err := trace.Generate(trace.Config{Seed: 7, Flows: 48, Interleave: true})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Packets()
}

func newEngPlatform(t *testing.T, chain []core.NF, opts core.Options) *engPlatform {
	t.Helper()
	eng, err := core.NewEngine(chain, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &engPlatform{eng: eng}
}

func TestNewMultiQueueValidation(t *testing.T) {
	if _, err := NewMultiQueue(nil, 4); err == nil {
		t.Error("nil platform accepted")
	}
	p := newEngPlatform(t, []core.NF{noopNF{}}, core.DefaultOptions())
	if _, err := NewMultiQueue(p, 0); err == nil {
		t.Error("zero workers accepted")
	}
	mq, err := NewMultiQueue(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mq.Workers() != 4 || mq.Platform() != Platform(p) {
		t.Errorf("Workers=%d Platform=%v", mq.Workers(), mq.Platform())
	}
}

// TestMultiQueueMatchesSerial checks that a 4-worker run over the same
// trace produces the same aggregate accounting as the serial runner:
// identical packet/drop counts, identical engine statistics (flows are
// independent, so per-flow path decisions cannot depend on the
// cross-flow interleaving), and identical work-cycle totals.
func TestMultiQueueMatchesSerial(t *testing.T) {
	serialP := newEngPlatform(t, []core.NF{dropNF{}}, core.DefaultOptions())
	serial, err := Run(serialP, testTrace(t))
	if err != nil {
		t.Fatal(err)
	}

	mqP := newEngPlatform(t, []core.NF{dropNF{}}, core.DefaultOptions())
	mq, err := NewMultiQueue(mqP, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := mq.Run(testTrace(t))
	if err != nil {
		t.Fatal(err)
	}

	if par.Packets != serial.Packets || par.Drops != serial.Drops {
		t.Errorf("multiqueue packets=%d drops=%d, serial packets=%d drops=%d",
			par.Packets, par.Drops, serial.Packets, serial.Drops)
	}
	if par.Stats != serial.Stats {
		t.Errorf("stats diverged:\nmq:     %+v\nserial: %+v", par.Stats, serial.Stats)
	}
	var mqWork, serWork uint64
	for _, c := range par.WorkCycles {
		mqWork += c
	}
	for _, c := range serial.WorkCycles {
		serWork += c
	}
	if mqWork != serWork {
		t.Errorf("work cycles: multiqueue %d, serial %d", mqWork, serWork)
	}
	if len(par.FlowCycles) != len(serial.FlowCycles) {
		t.Fatalf("flow count: multiqueue %d, serial %d", len(par.FlowCycles), len(serial.FlowCycles))
	}
	for fid, c := range serial.FlowCycles {
		if par.FlowCycles[fid] != c {
			t.Errorf("flow %v cycles: multiqueue %d, serial %d", fid, par.FlowCycles[fid], c)
		}
	}
	if math.IsNaN(par.MeanLatencyMicros()) || par.RateMpps() <= 0 {
		t.Errorf("latency=%g rate=%g", par.MeanLatencyMicros(), par.RateMpps())
	}
}

// TestMultiQueuePreservesFlowOrder checks the RSS guarantee: all
// packets of one flow land on one worker, so each flow's packets reach
// the chain in trace order even though flows run concurrently. The
// engine runs in baseline mode so every packet traverses the recording
// NF (with SpeedyBox on, subsequent packets bypass the chain).
func TestMultiQueuePreservesFlowOrder(t *testing.T) {
	pkts := testTrace(t)
	want := make(map[packet.FiveTuple][]*packet.Packet)
	for _, pkt := range pkts {
		ft, err := pkt.FiveTuple()
		if err != nil {
			t.Fatal(err)
		}
		want[ft] = append(want[ft], pkt)
	}

	rec := &orderNF{seen: make(map[packet.FiveTuple][]*packet.Packet)}
	mq, err := NewMultiQueue(newEngPlatform(t, []core.NF{rec}, core.BaselineOptions()), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mq.Run(pkts); err != nil {
		t.Fatal(err)
	}

	if len(rec.seen) != len(want) {
		t.Fatalf("saw %d flows, want %d", len(rec.seen), len(want))
	}
	for ft, wantOrder := range want {
		gotOrder := rec.seen[ft]
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("flow %v: saw %d packets, want %d", ft, len(gotOrder), len(wantOrder))
		}
		for i := range wantOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("flow %v: packet %d out of order", ft, i)
			}
		}
	}
}

func TestMultiQueuePropagatesError(t *testing.T) {
	p := newFake(t, nil)
	p.err = errors.New("boom")
	mq, err := NewMultiQueue(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mq.Run([]*packet.Packet{pkt(t)}); err == nil {
		t.Error("multiqueue swallowed the platform error")
	}
}

// TestMultiQueueBatchedMatchesSerial is TestMultiQueueMatchesSerial
// with batched workers: SetBatchSize must change only how packets move
// (vectors through ProcessBatch instead of scalar calls), never the
// aggregate accounting.
func TestMultiQueueBatchedMatchesSerial(t *testing.T) {
	serialP := newEngPlatform(t, []core.NF{dropNF{}}, core.DefaultOptions())
	serial, err := Run(serialP, testTrace(t))
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 8, 32} {
		mqP := newEngPlatform(t, []core.NF{dropNF{}}, core.DefaultOptions())
		mq, err := NewMultiQueue(mqP, 4)
		if err != nil {
			t.Fatal(err)
		}
		mq.SetBatchSize(batch)
		if got := mq.BatchSize(); got != batch {
			t.Fatalf("BatchSize = %d, want %d", got, batch)
		}
		par, err := mq.Run(testTrace(t))
		if err != nil {
			t.Fatal(err)
		}
		if par.Packets != serial.Packets || par.Drops != serial.Drops {
			t.Errorf("batch=%d: packets=%d drops=%d, serial packets=%d drops=%d",
				batch, par.Packets, par.Drops, serial.Packets, serial.Drops)
		}
		if par.Stats != serial.Stats {
			t.Errorf("batch=%d: stats diverged:\nmq:     %+v\nserial: %+v", batch, par.Stats, serial.Stats)
		}
		var mqWork, serWork uint64
		for _, c := range par.WorkCycles {
			mqWork += c
		}
		for _, c := range serial.WorkCycles {
			serWork += c
		}
		if mqWork != serWork {
			t.Errorf("batch=%d: work cycles %d, serial %d", batch, mqWork, serWork)
		}
	}
}

func TestMultiQueueSetClassesValidation(t *testing.T) {
	p := newEngPlatform(t, []core.NF{noopNF{}}, core.DefaultOptions())
	mq, err := NewMultiQueue(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	route := func(*packet.Packet) int { return 0 }
	if err := mq.SetClasses([]ChainClass{{Platform: p, Weight: 1}}, nil); err == nil {
		t.Error("nil route accepted")
	}
	if err := mq.SetClasses([]ChainClass{{Platform: nil, Weight: 1}}, route); err == nil {
		t.Error("nil class platform accepted")
	}
	if err := mq.SetClasses([]ChainClass{{Platform: p, Weight: 0}}, route); err == nil {
		t.Error("zero weight accepted")
	}
	if err := mq.SetClasses([]ChainClass{{Platform: p, Weight: 1}}, route); err != nil {
		t.Errorf("valid classes rejected: %v", err)
	}
	if err := mq.SetClasses(nil, nil); err != nil {
		t.Errorf("reset rejected: %v", err)
	}
}

// TestMultiQueueClassesMatchesSerial checks the fair-share dispatcher
// against per-class serial runs: weighted-round-robin scheduling may
// reorder packets across classes, but each class platform must end up
// with exactly the accounting of a serial run over its own packets,
// regardless of weights or batch size.
func TestMultiQueueClassesMatchesSerial(t *testing.T) {
	routeOf := func(pkt *packet.Packet) int {
		ft, err := pkt.FiveTuple()
		if err != nil {
			return 0
		}
		return int(ft.SrcPort % 2)
	}

	// Serial reference: split the trace by class, run each through its
	// own platform.
	refA := newEngPlatform(t, []core.NF{dropNF{}}, core.DefaultOptions())
	refB := newEngPlatform(t, []core.NF{dropNF{}}, core.DefaultOptions())
	var byClass [2][]*packet.Packet
	for _, pkt := range testTrace(t) {
		byClass[routeOf(pkt)] = append(byClass[routeOf(pkt)], pkt)
	}
	resA, err := Run(refA, byClass[0])
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Run(refB, byClass[1])
	if err != nil {
		t.Fatal(err)
	}
	wantStats := resA.Stats
	wantStats.Add(resB.Stats)

	for _, tc := range []struct{ weightA, weightB, batch int }{
		{1, 1, 0}, {1, 3, 0}, {2, 1, 8},
	} {
		pA := newEngPlatform(t, []core.NF{dropNF{}}, core.DefaultOptions())
		pB := newEngPlatform(t, []core.NF{dropNF{}}, core.DefaultOptions())
		mq, err := NewMultiQueue(pA, 4)
		if err != nil {
			t.Fatal(err)
		}
		mq.SetBatchSize(tc.batch)
		err = mq.SetClasses([]ChainClass{
			{Platform: pA, Weight: tc.weightA},
			{Platform: pB, Weight: tc.weightB},
		}, routeOf)
		if err != nil {
			t.Fatal(err)
		}
		par, err := mq.Run(testTrace(t))
		if err != nil {
			t.Fatal(err)
		}
		if par.Packets != resA.Packets+resB.Packets || par.Drops != resA.Drops+resB.Drops {
			t.Errorf("weights %d:%d batch %d: packets=%d drops=%d, serial %d/%d",
				tc.weightA, tc.weightB, tc.batch, par.Packets, par.Drops,
				resA.Packets+resB.Packets, resA.Drops+resB.Drops)
		}
		if par.Stats != wantStats {
			t.Errorf("weights %d:%d batch %d: stats diverged:\nmq:     %+v\nserial: %+v",
				tc.weightA, tc.weightB, tc.batch, par.Stats, wantStats)
		}
		if gotA, gotB := pA.Engine().Stats(), pB.Engine().Stats(); gotA != resA.Stats || gotB != resB.Stats {
			t.Errorf("weights %d:%d batch %d: per-class stats diverged", tc.weightA, tc.weightB, tc.batch)
		}
	}
}

// TestRunBatchMatchesRun drives the chunked batch runner over the same
// trace as the scalar runner and compares every aggregate, with and
// without a descriptor pool.
func TestRunBatchMatchesRun(t *testing.T) {
	serialP := newEngPlatform(t, []core.NF{dropNF{}}, core.DefaultOptions())
	serial, err := Run(serialP, testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, withPool := range []bool{false, true} {
		batchP := newEngPlatform(t, []core.NF{dropNF{}}, core.DefaultOptions())
		var pool *packet.Pool
		pkts := testTrace(t)
		if withPool {
			pool = packet.NewPool()
			pooled := make([]*packet.Packet, 0, len(pkts))
			for _, p := range pkts {
				pooled = append(pooled, pool.Clone(p))
			}
			pkts = pooled
		}
		got, err := RunBatch(batchP, pkts, 32, pool)
		if err != nil {
			t.Fatal(err)
		}
		if got.Packets != serial.Packets || got.Drops != serial.Drops {
			t.Errorf("pool=%v: packets=%d drops=%d, serial packets=%d drops=%d",
				withPool, got.Packets, got.Drops, serial.Packets, serial.Drops)
		}
		if got.Stats != serial.Stats {
			t.Errorf("pool=%v: stats diverged:\nbatch:  %+v\nserial: %+v", withPool, got.Stats, serial.Stats)
		}
	}
}
