// Package platform defines the execution-platform abstraction shared
// by the BESS and OpenNetVM models: per-packet measurements combining
// the engine's work accounting with platform-specific latency and
// throughput formulas, plus a trace runner that aggregates run-level
// statistics (per-packet latency, per-flow processing time, rate).
package platform

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/cost"
	"github.com/fastpathnfv/speedybox/internal/flow"
	"github.com/fastpathnfv/speedybox/internal/packet"
)

// Measurement is one packet's platform-level account.
type Measurement struct {
	// Result is the engine's path/verdict/work decomposition.
	Result *core.PacketResult
	// WorkCycles is the paper's "CPU cycle per packet" metric,
	// including any platform-specific work additions (e.g. ONVM's
	// inter-core consolidation messages).
	WorkCycles uint64
	// LatencyCycles is the packet's end-to-end processing latency on
	// the platform's topology.
	LatencyCycles uint64
	// BottleneckCycles is the per-packet cost of the platform's
	// most-loaded core, which bounds throughput (rate = freq /
	// mean bottleneck).
	BottleneckCycles uint64
}

// Platform is an NFV execution platform hosting one service chain.
type Platform interface {
	// Name returns the platform name ("BESS" or "OpenNetVM"),
	// suffixed with " w/ SBox" when SpeedyBox is enabled.
	Name() string
	// Process runs one packet through the chain.
	Process(pkt *packet.Packet) (Measurement, error)
	// ProcessBatch runs a vector of packets through the chain in
	// arrival order, using the caller-owned Batch scratch (one per
	// worker goroutine). Returned measurements point into the Batch and
	// are valid until its next use. Semantics match calling Process per
	// packet; platforms amortize dispatch, lookups and allocations
	// across the vector.
	ProcessBatch(pkts []*packet.Packet, b *Batch) ([]Measurement, error)
	// Engine exposes the underlying SpeedyBox engine.
	Engine() *core.Engine
	// Model exposes the cost model.
	Model() *cost.Model
	// Close releases platform resources (pipeline goroutines).
	Close() error
}

// Reconfigurer is the optional live-reconfiguration capability: a
// platform implementing it applies a chain plan without stopping the
// pipeline (no packet dropped, surviving NF state preserved). Callers
// type-assert:
//
//	if r, ok := p.(platform.Reconfigurer); ok { err = r.Reconfigure(plan) }
//
// Both the BESS and the ONVM model implement it; the interface stays
// separate from Platform so third-party platforms without a live path
// remain valid.
type Reconfigurer interface {
	Reconfigure(plan core.ChainPlan) error
}

// Batch is per-worker scratch for ProcessBatch: the engine-level batch
// state (rule cache, pooled result storage) plus the platform's
// measurement buffer. It must not be shared between goroutines.
type Batch struct {
	// Core is the engine-level batch scratch.
	Core *core.Batch
	meas []Measurement
}

// NewBatch returns batch scratch sized for n-packet vectors (0 picks
// core.DefaultBatchSize).
func NewBatch(n int) *Batch {
	if n <= 0 {
		n = core.DefaultBatchSize
	}
	return &Batch{Core: core.NewBatch(n), meas: make([]Measurement, n)}
}

// Measurements returns the reusable measurement buffer resized to n
// (for platform implementations).
func (b *Batch) Measurements(n int) []Measurement {
	if cap(b.meas) < n {
		b.meas = make([]Measurement, n)
	}
	b.meas = b.meas[:n]
	return b.meas
}

// DisplayName composes the conventional platform label.
func DisplayName(base string, sbox bool) string {
	if sbox {
		return base + " w/ SBox"
	}
	return base
}

// RunResult aggregates a trace run.
type RunResult struct {
	Packets     int
	Drops       int
	WorkCycles  []uint64
	Latencies   []uint64 // cycles
	Bottlenecks []uint64
	// FlowCycles sums each flow's per-packet latency — the paper's
	// "flow processing time ... the aggregated time spent processing
	// all packets in a flow" (§VII-B3).
	FlowCycles map[flow.FID]uint64
	// QueueDepths is how many packets each multi-queue worker drained;
	// empty for serial runs.
	QueueDepths []int
	Stats       core.Stats
	model       *cost.Model
}

// NewRunResult returns an empty aggregate bound to the cost model,
// for callers (multi-chain topologies) that fold measurements in
// themselves rather than through Run/RunBatch.
func NewRunResult(m *cost.Model) *RunResult {
	return &RunResult{FlowCycles: make(map[flow.FID]uint64), model: m}
}

// Fold appends a vector of measurements into the aggregate. Call it
// before the vector's Batch is reused — measurements point into it.
func (r *RunResult) Fold(ms []Measurement) {
	for i := range ms {
		m := &ms[i]
		r.Packets++
		if m.Result.Verdict == core.VerdictDrop {
			r.Drops++
		}
		r.WorkCycles = append(r.WorkCycles, m.WorkCycles)
		r.Latencies = append(r.Latencies, m.LatencyCycles)
		r.Bottlenecks = append(r.Bottlenecks, m.BottleneckCycles)
		r.FlowCycles[m.Result.FID] += m.LatencyCycles
	}
}

// MeanWorkCycles returns the average per-packet work.
func (r *RunResult) MeanWorkCycles() float64 { return meanU64(r.WorkCycles) }

// MeanLatencyMicros returns the average per-packet latency in µs.
func (r *RunResult) MeanLatencyMicros() float64 {
	return r.model.CyclesToMicros(1) * meanU64(r.Latencies)
}

// RateMpps returns the sustained processing rate implied by the mean
// bottleneck-core occupancy.
func (r *RunResult) RateMpps() float64 {
	return r.model.RateMpps(meanU64(r.Bottlenecks))
}

// AggregateRateMpps returns the modeled multi-queue rate: the per-core
// rate times the effective parallelism of the run's queue partition
// (total packets over the deepest queue — with W balanced queues this
// approaches W, and the deepest queue is the multi-core bottleneck).
// For serial runs it equals RateMpps.
func (r *RunResult) AggregateRateMpps() float64 {
	if len(r.QueueDepths) == 0 {
		return r.RateMpps()
	}
	total, deepest := 0, 0
	for _, d := range r.QueueDepths {
		total += d
		if d > deepest {
			deepest = d
		}
	}
	if deepest == 0 {
		return r.RateMpps()
	}
	return r.RateMpps() * float64(total) / float64(deepest)
}

// FlowTimesMicros returns every flow's processing time in µs.
func (r *RunResult) FlowTimesMicros() []float64 {
	out := make([]float64, 0, len(r.FlowCycles))
	for _, c := range r.FlowCycles {
		out = append(out, r.model.CyclesToMicros(c))
	}
	return out
}

func meanU64(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// Run feeds every packet of the trace through the platform in order
// and aggregates the measurements. Packet buffers are consumed (the
// platform mutates or drops them).
func Run(p Platform, pkts []*packet.Packet) (*RunResult, error) {
	res := &RunResult{
		FlowCycles: make(map[flow.FID]uint64),
		model:      p.Model(),
	}
	for i, pkt := range pkts {
		m, err := p.Process(pkt)
		if err != nil {
			return nil, fmt.Errorf("platform %s: packet %d: %w", p.Name(), i, err)
		}
		res.Packets++
		if m.Result.Verdict == core.VerdictDrop {
			res.Drops++
		}
		res.WorkCycles = append(res.WorkCycles, m.WorkCycles)
		res.Latencies = append(res.Latencies, m.LatencyCycles)
		res.Bottlenecks = append(res.Bottlenecks, m.BottleneckCycles)
		res.FlowCycles[m.Result.FID] += m.LatencyCycles
	}
	res.Stats = p.Engine().Stats()
	return res, nil
}

// RunBatch is Run over batchSize-packet vectors (0 picks
// core.DefaultBatchSize): packets are fed through ProcessBatch in
// arrival order and measurements aggregate exactly as Run's. When pool
// is non-nil, every packet is returned to it after its measurement is
// folded in, so pooled trace replay recycles descriptors.
func RunBatch(p Platform, pkts []*packet.Packet, batchSize int, pool *packet.Pool) (*RunResult, error) {
	if batchSize <= 0 {
		batchSize = core.DefaultBatchSize
	}
	b := NewBatch(batchSize)
	res := &RunResult{
		FlowCycles: make(map[flow.FID]uint64),
		model:      p.Model(),
	}
	for off := 0; off < len(pkts); off += batchSize {
		end := off + batchSize
		if end > len(pkts) {
			end = len(pkts)
		}
		ms, err := p.ProcessBatch(pkts[off:end], b)
		if err != nil {
			return nil, fmt.Errorf("platform %s: batch at packet %d: %w", p.Name(), off, err)
		}
		for i := range ms {
			m := &ms[i]
			res.Packets++
			if m.Result.Verdict == core.VerdictDrop {
				res.Drops++
			}
			res.WorkCycles = append(res.WorkCycles, m.WorkCycles)
			res.Latencies = append(res.Latencies, m.LatencyCycles)
			res.Bottlenecks = append(res.Bottlenecks, m.BottleneckCycles)
			res.FlowCycles[m.Result.FID] += m.LatencyCycles
		}
		if pool != nil {
			for _, pkt := range pkts[off:end] {
				pool.Put(pkt)
			}
		}
	}
	res.Stats = p.Engine().Stats()
	return res, nil
}
