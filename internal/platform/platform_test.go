package platform

import (
	"errors"
	"math"
	"testing"

	"github.com/fastpathnfv/speedybox/internal/classifier"
	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/cost"
	"github.com/fastpathnfv/speedybox/internal/flow"
	"github.com/fastpathnfv/speedybox/internal/packet"
)

// fakePlatform returns scripted measurements.
type fakePlatform struct {
	eng      *core.Engine
	model    *cost.Model
	measures []Measurement
	next     int
	err      error
	closed   bool
}

func (f *fakePlatform) Name() string         { return "fake" }
func (f *fakePlatform) Engine() *core.Engine { return f.eng }
func (f *fakePlatform) Model() *cost.Model   { return f.model }
func (f *fakePlatform) Close() error         { f.closed = true; return nil }

func (f *fakePlatform) Process(pkt *packet.Packet) (Measurement, error) {
	if f.err != nil {
		return Measurement{}, f.err
	}
	m := f.measures[f.next%len(f.measures)]
	f.next++
	return m, nil
}

func (f *fakePlatform) ProcessBatch(pkts []*packet.Packet, b *Batch) ([]Measurement, error) {
	ms := b.Measurements(len(pkts))[:0]
	for _, pkt := range pkts {
		m, err := f.Process(pkt)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return ms, nil
}

type noopNF struct{}

func (noopNF) Name() string { return "noop" }
func (noopNF) Process(ctx *core.Ctx, pkt *packet.Packet) (core.Verdict, error) {
	return core.VerdictForward, nil
}

func newFake(t *testing.T, measures []Measurement) *fakePlatform {
	t.Helper()
	eng, err := core.NewEngine([]core.NF{noopNF{}}, core.BaselineOptions())
	if err != nil {
		t.Fatal(err)
	}
	return &fakePlatform{eng: eng, model: cost.DefaultModel(), measures: measures}
}

func pkt(t *testing.T) *packet.Packet {
	t.Helper()
	return packet.MustBuild(packet.Spec{
		SrcIP: packet.IP4(1, 1, 1, 1), DstIP: packet.IP4(2, 2, 2, 2),
		SrcPort: 1, DstPort: 2,
	})
}

func res(fid flow.FID, verdict core.Verdict) *core.PacketResult {
	return &core.PacketResult{
		FID: fid, Kind: classifier.KindSubsequent,
		Path: core.PathFast, Verdict: verdict,
	}
}

func TestRunAggregation(t *testing.T) {
	measures := []Measurement{
		{Result: res(1, core.VerdictForward), WorkCycles: 100, LatencyCycles: 2000, BottleneckCycles: 4000},
		{Result: res(1, core.VerdictForward), WorkCycles: 200, LatencyCycles: 4000, BottleneckCycles: 4000},
		{Result: res(2, core.VerdictDrop), WorkCycles: 300, LatencyCycles: 6000, BottleneckCycles: 4000},
	}
	p := newFake(t, measures)
	out, err := Run(p, []*packet.Packet{pkt(t), pkt(t), pkt(t)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Packets != 3 || out.Drops != 1 {
		t.Errorf("packets=%d drops=%d", out.Packets, out.Drops)
	}
	if got := out.MeanWorkCycles(); got != 200 {
		t.Errorf("MeanWorkCycles = %g", got)
	}
	// 2 GHz: mean 4000 cycles = 2 µs.
	if got := out.MeanLatencyMicros(); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("MeanLatencyMicros = %g", got)
	}
	// Bottleneck 4000 cycles at 2 GHz = 0.5 Mpps.
	if got := out.RateMpps(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("RateMpps = %g", got)
	}
	// Flow 1 latency = 2000+4000 cycles = 3 µs; flow 2 = 3 µs.
	times := out.FlowTimesMicros()
	if len(times) != 2 {
		t.Fatalf("flow times = %v", times)
	}
	if math.Abs(times[0]-3.0) > 1e-9 || math.Abs(times[1]-3.0) > 1e-9 {
		t.Errorf("flow times = %v, want [3 3]", times)
	}
}

func TestRunPropagatesError(t *testing.T) {
	p := newFake(t, nil)
	p.err = errors.New("boom")
	if _, err := Run(p, []*packet.Packet{pkt(t)}); err == nil {
		t.Error("Run swallowed the platform error")
	}
}

func TestRunEmptyTrace(t *testing.T) {
	p := newFake(t, []Measurement{{Result: res(1, core.VerdictForward)}})
	out, err := Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Packets != 0 || out.MeanWorkCycles() != 0 || out.RateMpps() != 0 {
		t.Errorf("empty run = %+v", out)
	}
}

func TestDisplayName(t *testing.T) {
	if DisplayName("BESS", false) != "BESS" {
		t.Error("baseline name wrong")
	}
	if DisplayName("BESS", true) != "BESS w/ SBox" {
		t.Error("sbox name wrong")
	}
}
