package cost

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Ledger accumulates per-packet work cycles attributed to named
// stages. A stage is one NF on the slow path, or a SpeedyBox component
// ("classifier", "globalmat", one state-function batch) on the fast
// path. The platform executors read the stage decomposition to compute
// latency (sequential or parallel composition) and throughput
// (pipeline bottleneck).
//
// A Ledger is safe for concurrent use: the parallel state-function
// executor charges batches from multiple goroutines.
type Ledger struct {
	mu     sync.Mutex
	order  []string
	stages map[string]uint64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{stages: make(map[string]uint64)}
}

// Charge adds cycles to the named stage, creating it if needed.
func (l *Ledger) Charge(stage string, cycles uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.stages[stage]; !ok {
		l.order = append(l.order, stage)
	}
	l.stages[stage] += cycles
}

// Stage returns the cycles charged to one stage.
func (l *Ledger) Stage(name string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stages[name]
}

// Total returns the sum over all stages: the per-packet work-cycle
// metric ("CPU cycle per packet").
func (l *Ledger) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum uint64
	for _, c := range l.stages {
		sum += c
	}
	return sum
}

// Stages returns (name, cycles) pairs in first-charge order.
func (l *Ledger) Stages() []StageCost {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]StageCost, 0, len(l.order))
	for _, name := range l.order {
		out = append(out, StageCost{Name: name, Cycles: l.stages[name]})
	}
	return out
}

// Max returns the largest single stage cost (the pipeline bottleneck
// candidate) and its name.
func (l *Ledger) Max() (string, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var (
		best     uint64
		bestName string
	)
	for _, name := range l.order {
		if c := l.stages[name]; c > best {
			best, bestName = c, name
		}
	}
	return bestName, best
}

// Reset clears all stages for descriptor reuse.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.order = l.order[:0]
	for k := range l.stages {
		delete(l.stages, k)
	}
}

// String renders the ledger for debugging.
func (l *Ledger) String() string {
	stages := l.Stages()
	parts := make([]string, 0, len(stages))
	for _, s := range stages {
		parts = append(parts, fmt.Sprintf("%s=%d", s.Name, s.Cycles))
	}
	return fmt.Sprintf("ledger{%s total=%d}", strings.Join(parts, " "), l.Total())
}

// StageCost is one named stage's accumulated cycles.
type StageCost struct {
	Name   string
	Cycles uint64
}

// SortedStages returns the stages sorted by descending cost, for
// reporting.
func SortedStages(stages []StageCost) []StageCost {
	out := make([]StageCost, len(stages))
	copy(out, stages)
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	return out
}
