// Package cost implements the deterministic cycle-cost model that
// stands in for the paper's hardware testbed (Intel Xeon E5-2660 v4 @
// 2.0 GHz, measured with CPU cycle counters).
//
// Functional behaviour in this reproduction is real — packets are
// byte buffers that NFs genuinely parse, match and rewrite — but
// performance is modeled: every primitive operation charges a
// calibrated number of cycles to a Ledger. The absolute constants are
// calibrated against the paper's reported single-NF numbers (e.g.
// ~530-580 cycles per IPFilter traversal in Table III); the shapes of
// the reproduced figures depend only on the relative costs.
//
// Two accounting channels exist, mirroring how the paper measures:
//
//   - Work cycles: the processing cycles attributable to NF and
//     SpeedyBox logic. This is the "CPU cycle per packet" metric of
//     Figures 4 and 6 and Table III.
//   - Platform cycles: framework overheads (RX/TX, module-graph or
//     ring-buffer handling, polling) that determine latency and
//     throughput but are not attributed to any NF. These live in the
//     platform constants below and are applied by internal/bess and
//     internal/onvm.
package cost

import (
	"fmt"
	"time"
)

// Model holds every calibrated cycle constant. The zero value is not
// usable; obtain a Model from DefaultModel and adjust fields as needed.
// All cycle fields are in CPU cycles at FreqHz.
type Model struct {
	// FreqHz is the virtual clock frequency; the paper's testbed CPU
	// runs at 2.0 GHz.
	FreqHz float64

	// ---- Per-NF work primitives ----

	// Parse is one full header parse (L2+L3+L4), the step every NF in
	// an unconsolidated chain repeats (redundancy R1).
	Parse uint64
	// Classify is one flow-table classification (hash + lookup) inside
	// an NF.
	Classify uint64
	// ACLPerRule is the per-rule cost of a linear ACL scan (IPFilter
	// initial packets).
	ACLPerRule uint64
	// FlowCacheHit is an NF-internal per-flow cache hit for
	// subsequent packets on the original path.
	FlowCacheHit uint64
	// ModifyField is one header-field rewrite.
	ModifyField uint64
	// ChecksumUpdate is one checksum recomputation pass (IP +
	// transport). On the original path every modifying NF pays it; on
	// the consolidated path it is paid once (part of the R3 saving).
	ChecksumUpdate uint64
	// DropAction releases a packet descriptor.
	DropAction uint64
	// EncapHeader and DecapHeader are header push/pop costs.
	EncapHeader uint64
	DecapHeader uint64
	// CounterUpdate is one per-flow counter update (Monitor).
	CounterUpdate uint64
	// ConnTrackLookup and ConnTrackInsert are connection-table
	// operations (Maglev, MazuNAT).
	ConnTrackLookup uint64
	ConnTrackInsert uint64
	// NATAllocate is allocation of a fresh external (IP, port) mapping.
	NATAllocate uint64
	// MaglevTableLookup is one consistent-hash lookup-table probe.
	MaglevTableLookup uint64
	// InspectBase and InspectPerByte model payload inspection (Snort):
	// fixed setup plus a per-payload-byte scan cost.
	InspectBase    uint64
	InspectPerByte uint64
	// LogEvent is writing one IDS log/alert record.
	LogEvent uint64

	// ---- SpeedyBox work primitives ----

	// HashFID is the Packet Classifier's 5-tuple hash producing the
	// 20-bit FID (paper §VI-B).
	HashFID uint64
	// FastPathBase is the fixed fast-path cost per subsequent packet:
	// metadata attach/detach and Global MAT array indexing. Together
	// with HashFID, EventCheck and GMATLookup it explains why a
	// 1-header-action chain is slightly *slower* with SpeedyBox
	// (Figure 4) while longer chains win.
	FastPathBase uint64
	// FastPathPerHA is the marginal fast-path cost per source NF whose
	// actions were folded into the consolidated rule (rule metadata is
	// proportionally larger). Not charged for consolidated drops,
	// which short-circuit (Table III early drop).
	FastPathPerHA uint64
	// EventCheck is one Event Table condition probe.
	EventCheck uint64
	// EventFire is the cost of applying a triggered event's update to
	// the Local MAT (excluding the reconsolidation, charged
	// separately).
	EventFire uint64
	// GMATLookup is one Global MAT rule fetch by FID.
	GMATLookup uint64
	// RecordHA, RecordSF and RecordEvent are Local MAT instrumentation
	// costs on the initial-packet path ("extra overhead for recording
	// the processing rules into the Local MAT", §VII-A1).
	RecordHA    uint64
	RecordSF    uint64
	RecordEvent uint64
	// ConsolidateBase and ConsolidatePerNF are the Global MAT
	// consolidation costs after the initial packet finishes the chain.
	ConsolidateBase  uint64
	ConsolidatePerNF uint64
	// ForkJoin is the per-parallel-stage dispatch/join overhead of the
	// state-function parallel executor (§V-C2).
	ForkJoin uint64

	// ---- BESS platform constants (run-to-completion, §VI-A) ----

	// BESSFramework is the per-packet framework cost on the original
	// path: RX, TX, mempool and module-graph traversal on the single
	// chain core.
	BESSFramework uint64
	// BESSFastFramework is the per-packet framework cost on the
	// SpeedyBox fast path, which executes in a single Global MAT
	// module and skips most of the module graph.
	BESSFastFramework uint64
	// BESSPerModule is the per-NF module-crossing latency cost.
	BESSPerModule uint64

	// ---- OpenNetVM platform constants (pipelined, §VI-A) ----

	// ONVMRx and ONVMTx are manager RX/TX thread costs per packet.
	ONVMRx uint64
	ONVMTx uint64
	// ONVMHop is the latency of one shared-memory ring transfer
	// between cores (enqueue + dequeue + cache-line migration).
	ONVMHop uint64
	// ONVMStageFramework is the per-packet, per-stage core occupancy
	// beyond NF work (descriptor handling, queue polling). It bounds
	// throughput — the pipeline bottleneck — but does not appear in
	// unloaded latency.
	ONVMStageFramework uint64
	// ONVMMsgHop is one inter-core message-queue hop, used when Local
	// MAT rules are collected to the manager for consolidation
	// (§VI-A: "We leverage the existing inter-core message queues").
	ONVMMsgHop uint64
	// ONVMCoreBudget is the testbed core count (14 physical cores);
	// with manager threads reserved it caps ONVM chains at length 5
	// (§VII-B2).
	ONVMCoreBudget int
}

// DefaultModel returns the calibrated model. See the package comment
// and EXPERIMENTS.md for the calibration rationale.
func DefaultModel() *Model {
	return &Model{
		FreqHz: 2.0e9,

		Parse:             150,
		Classify:          250,
		ACLPerRule:        12,
		FlowCacheHit:      150,
		ModifyField:       100,
		ChecksumUpdate:    80,
		DropAction:        20,
		EncapHeader:       180,
		DecapHeader:       140,
		CounterUpdate:     300,
		ConnTrackLookup:   120,
		ConnTrackInsert:   100,
		NATAllocate:       300,
		MaglevTableLookup: 150,
		InspectBase:       120,
		InspectPerByte:    2,
		LogEvent:          60,

		HashFID:          80,
		FastPathBase:     300,
		FastPathPerHA:    40,
		EventCheck:       60,
		EventFire:        150,
		GMATLookup:       120,
		RecordHA:         40,
		RecordSF:         40,
		RecordEvent:      50,
		ConsolidateBase:  150,
		ConsolidatePerNF: 70,
		ForkJoin:         120,

		BESSFramework:     2250,
		BESSFastFramework: 1600,
		BESSPerModule:     100,

		ONVMRx:             700,
		ONVMTx:             700,
		ONVMHop:            600,
		ONVMStageFramework: 3020,
		ONVMMsgHop:         200,
		ONVMCoreBudget:     14,
	}
}

// Validate reports whether every calibration constant is usable: the
// clock and all work primitives must be positive (a zeroed field is
// almost always a forgotten initialization after adding a constant).
func (m *Model) Validate() error {
	if m.FreqHz <= 0 {
		return fmt.Errorf("cost: FreqHz must be positive, got %g", m.FreqHz)
	}
	checks := []struct {
		name  string
		value uint64
	}{
		{"Parse", m.Parse}, {"Classify", m.Classify}, {"ACLPerRule", m.ACLPerRule},
		{"FlowCacheHit", m.FlowCacheHit}, {"ModifyField", m.ModifyField},
		{"ChecksumUpdate", m.ChecksumUpdate}, {"DropAction", m.DropAction},
		{"EncapHeader", m.EncapHeader}, {"DecapHeader", m.DecapHeader},
		{"CounterUpdate", m.CounterUpdate}, {"ConnTrackLookup", m.ConnTrackLookup},
		{"ConnTrackInsert", m.ConnTrackInsert}, {"NATAllocate", m.NATAllocate},
		{"MaglevTableLookup", m.MaglevTableLookup}, {"InspectBase", m.InspectBase},
		{"LogEvent", m.LogEvent}, {"HashFID", m.HashFID},
		{"FastPathBase", m.FastPathBase}, {"FastPathPerHA", m.FastPathPerHA},
		{"EventCheck", m.EventCheck}, {"EventFire", m.EventFire},
		{"GMATLookup", m.GMATLookup}, {"RecordHA", m.RecordHA},
		{"RecordSF", m.RecordSF}, {"RecordEvent", m.RecordEvent},
		{"ConsolidateBase", m.ConsolidateBase}, {"ConsolidatePerNF", m.ConsolidatePerNF},
		{"ForkJoin", m.ForkJoin}, {"BESSFramework", m.BESSFramework},
		{"BESSFastFramework", m.BESSFastFramework}, {"BESSPerModule", m.BESSPerModule},
		{"ONVMRx", m.ONVMRx}, {"ONVMTx", m.ONVMTx}, {"ONVMHop", m.ONVMHop},
		{"ONVMStageFramework", m.ONVMStageFramework}, {"ONVMMsgHop", m.ONVMMsgHop},
	}
	for _, c := range checks {
		if c.value == 0 {
			return fmt.Errorf("cost: %s is zero", c.name)
		}
	}
	if m.ONVMCoreBudget <= 0 {
		return fmt.Errorf("cost: ONVMCoreBudget must be positive, got %d", m.ONVMCoreBudget)
	}
	return nil
}

// InspectCost returns the payload-inspection cost for n payload bytes.
func (m *Model) InspectCost(n int) uint64 {
	return m.InspectBase + m.InspectPerByte*uint64(n)
}

// ACLScanCost returns the cost of linearly scanning rules ACL entries.
func (m *Model) ACLScanCost(rules int) uint64 {
	return m.ACLPerRule * uint64(rules)
}

// CyclesToDuration converts cycles on the virtual clock to wall time.
func (m *Model) CyclesToDuration(cycles uint64) time.Duration {
	return time.Duration(float64(cycles) / m.FreqHz * float64(time.Second))
}

// CyclesToMicros converts cycles to microseconds (the latency unit the
// paper reports).
func (m *Model) CyclesToMicros(cycles uint64) float64 {
	return float64(cycles) / m.FreqHz * 1e6
}

// RateMpps converts a per-packet bottleneck cost to a processing rate
// in millions of packets per second.
func (m *Model) RateMpps(bottleneckCycles float64) float64 {
	if bottleneckCycles <= 0 {
		return 0
	}
	return m.FreqHz / bottleneckCycles / 1e6
}
