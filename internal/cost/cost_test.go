package cost

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestDefaultModelSanity(t *testing.T) {
	m := DefaultModel()
	if m.FreqHz != 2.0e9 {
		t.Errorf("FreqHz = %g, want the paper's 2.0 GHz", m.FreqHz)
	}
	// The calibration targets from Table III and Figure 4: one
	// IPFilter traversal for a subsequent packet (parse + classify +
	// flow-cache hit + forward bookkeeping) must land in the paper's
	// 450-650 cycle band.
	perNF := m.Parse + m.Classify + m.FlowCacheHit
	if perNF < 400 || perNF > 700 {
		t.Errorf("per-NF subsequent cost = %d, want within [400,700] (Table III band)", perNF)
	}
	// The fast-path fixed cost must exceed one NF's cost so that a
	// 1-header-action chain is slower with SpeedyBox (Figure 4), but
	// must be below two NFs' cost so that 2-NF chains win.
	fast := m.FastPathBase + m.HashFID + m.EventCheck + m.GMATLookup
	if fast <= perNF {
		t.Errorf("fast path (%d) must cost more than one NF (%d) per Figure 4", fast, perNF)
	}
	if fast >= 2*perNF {
		t.Errorf("fast path (%d) must cost less than two NFs (%d)", fast, 2*perNF)
	}
}

func TestModelConversions(t *testing.T) {
	m := DefaultModel()
	tests := []struct {
		name   string
		cycles uint64
		micros float64
	}{
		{"zero", 0, 0},
		{"one microsecond", 2000, 1.0},
		{"half microsecond", 1000, 0.5},
		{"table III aggregate", 1689, 0.8445},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.CyclesToMicros(tt.cycles); math.Abs(got-tt.micros) > 1e-9 {
				t.Errorf("CyclesToMicros(%d) = %g, want %g", tt.cycles, got, tt.micros)
			}
			want := time.Duration(tt.micros * 1000 * float64(time.Nanosecond))
			if got := m.CyclesToDuration(tt.cycles); got != want {
				t.Errorf("CyclesToDuration(%d) = %v, want %v", tt.cycles, got, want)
			}
		})
	}
}

func TestRateMpps(t *testing.T) {
	m := DefaultModel()
	// 2000 cycles/packet at 2 GHz is exactly 1 Mpps.
	if got := m.RateMpps(2000); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("RateMpps(2000) = %g, want 1.0", got)
	}
	if got := m.RateMpps(0); got != 0 {
		t.Errorf("RateMpps(0) = %g, want 0", got)
	}
	if got := m.RateMpps(-5); got != 0 {
		t.Errorf("RateMpps(-5) = %g, want 0", got)
	}
}

func TestCostHelpers(t *testing.T) {
	m := DefaultModel()
	if got := m.InspectCost(0); got != m.InspectBase {
		t.Errorf("InspectCost(0) = %d, want base %d", got, m.InspectBase)
	}
	if got := m.InspectCost(100); got != m.InspectBase+100*m.InspectPerByte {
		t.Errorf("InspectCost(100) = %d", got)
	}
	if got := m.ACLScanCost(100); got != 100*m.ACLPerRule {
		t.Errorf("ACLScanCost(100) = %d", got)
	}
}

func TestLedgerBasics(t *testing.T) {
	l := NewLedger()
	if l.Total() != 0 {
		t.Error("fresh ledger not empty")
	}
	l.Charge("nf1", 100)
	l.Charge("nf2", 200)
	l.Charge("nf1", 50)
	if got := l.Stage("nf1"); got != 150 {
		t.Errorf("Stage(nf1) = %d, want 150", got)
	}
	if got := l.Total(); got != 350 {
		t.Errorf("Total = %d, want 350", got)
	}
	name, cycles := l.Max()
	if name != "nf2" || cycles != 200 {
		t.Errorf("Max = (%s, %d), want (nf2, 200)", name, cycles)
	}
	stages := l.Stages()
	if len(stages) != 2 || stages[0].Name != "nf1" || stages[1].Name != "nf2" {
		t.Errorf("Stages order = %v, want charge order", stages)
	}
	l.Reset()
	if l.Total() != 0 || len(l.Stages()) != 0 {
		t.Error("Reset did not clear ledger")
	}
	// Post-reset reuse must work.
	l.Charge("x", 1)
	if l.Total() != 1 {
		t.Error("ledger unusable after Reset")
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Charge("shared", 1)
			}
		}(i)
	}
	wg.Wait()
	if got := l.Total(); got != 8000 {
		t.Errorf("concurrent Total = %d, want 8000", got)
	}
}

func TestSortedStages(t *testing.T) {
	in := []StageCost{{"a", 5}, {"b", 50}, {"c", 10}}
	out := SortedStages(in)
	if out[0].Name != "b" || out[1].Name != "c" || out[2].Name != "a" {
		t.Errorf("SortedStages = %v", out)
	}
	// Input must be unmodified.
	if in[0].Name != "a" {
		t.Error("SortedStages mutated its input")
	}
}

func TestLedgerString(t *testing.T) {
	l := NewLedger()
	l.Charge("nf", 42)
	if s := l.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestModelValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	m := DefaultModel()
	m.FreqHz = 0
	if err := m.Validate(); err == nil {
		t.Error("zero FreqHz accepted")
	}
	m = DefaultModel()
	m.GMATLookup = 0
	if err := m.Validate(); err == nil {
		t.Error("zero GMATLookup accepted")
	}
	m = DefaultModel()
	m.ONVMCoreBudget = 0
	if err := m.Validate(); err == nil {
		t.Error("zero core budget accepted")
	}
	if err := (&Model{}).Validate(); err == nil {
		t.Error("zero model accepted")
	}
}
