package harness

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/bess"
	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/nf/gateway"
	"github.com/fastpathnfv/speedybox/internal/platform"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// The reconfig experiment measures what live reconfiguration costs the
// data plane: a datacenter-style trace runs through Chain 1 with
// SpeedyBox enabled, and halfway through a gateway NF is inserted live
// (a semantically visible chain change — every later packet gets a MAC
// rewrite). The per-window fast-path hit rate shows the epoch
// invalidation's whole footprint: a dip right after the change while
// every flow re-records under the new chain, then recovery as the
// record-and-consolidate cycle repopulates the Global MAT. The
// acceptance bar is zero drops and a final-window hit rate at or above
// 90% of the pre-change baseline.

// ReconfigWindow is one measurement window of the run.
type ReconfigWindow struct {
	// Start is the window's first packet index.
	Start int
	// Packets is the window size in packets.
	Packets int
	// Eligible counts the window's fast-path-eligible packets
	// (subsequent + final); HitRate is FastPath/Eligible.
	Eligible int
	HitRate  float64
	// AfterChange marks windows at or past the chain change.
	AfterChange bool
}

// ReconfigResult aggregates the reconfiguration experiment.
type ReconfigResult struct {
	Platform string
	Windows  []ReconfigWindow
	// ChangeAt is the packet index where the gateway was inserted.
	ChangeAt int
	// Baseline is the mean hit rate of the pre-change windows
	// (excluding the first, which warms the tables up).
	Baseline float64
	// Dip is the lowest post-change window hit rate.
	Dip float64
	// Recovered is the final window's hit rate; RecoveredFrac is its
	// fraction of Baseline.
	Recovered     float64
	RecoveredFrac float64
	// Drops counts dropped packets across the whole run (must be 0:
	// reconfiguration loses no packet).
	Drops int
	// Epoch is the engine's chain epoch after the run (1 = exactly one
	// reconfiguration applied).
	Epoch uint64
	// DegradedFlows is how many flows sat in the degradation ladder at
	// the end of the run.
	DegradedFlows int
}

// Passed reports whether the acceptance bar held: no packet dropped and
// the fast-path hit rate recovered to at least 90% of the pre-change
// baseline by the end of the trace.
func (r *ReconfigResult) Passed() bool {
	return r.Drops == 0 && r.Baseline > 0 && r.RecoveredFrac >= 0.9
}

// Format renders the experiment outcome.
func (r *ReconfigResult) Format() string {
	t := &tableWriter{}
	t.title(fmt.Sprintf("Live reconfiguration: fast-path hit-rate recovery on %s (gateway inserted at packet %d)",
		r.Platform, r.ChangeAt))
	t.row("window start", "packets", "eligible", "hit rate", "phase")
	for _, w := range r.Windows {
		phase := "pre-change"
		if w.AfterChange {
			phase = "post-change"
		}
		t.row(fmt.Sprintf("%d", w.Start), fmt.Sprintf("%d", w.Packets),
			fmt.Sprintf("%d", w.Eligible), f3(w.HitRate), phase)
	}
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	t.row("")
	t.row("baseline", "dip", "recovered", "recovered/baseline", "drops", "epoch", "result")
	t.row(f3(r.Baseline), f3(r.Dip), f3(r.Recovered),
		f3(r.RecoveredFrac), fmt.Sprintf("%d", r.Drops), fmt.Sprintf("%d", r.Epoch), status)
	return t.String()
}

// RunReconfig executes the live-reconfiguration experiment.
func RunReconfig(cfg Config) (*ReconfigResult, error) {
	cfg = cfg.withDefaults(400)
	batch := cfg.Batch
	if batch <= 1 {
		batch = 32
	}
	chain, err := Chain1()
	if err != nil {
		return nil, err
	}
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		MeanPackets: 24,
		UDPFraction: 0.0001, // all-TCP: every flow consolidates and tears down
		Interleave:  true,
	})
	if err != nil {
		return nil, err
	}
	p, err := bess.New(bess.Config{Chain: chain, Options: cfg.options(core.DefaultOptions())})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	rec, ok := platform.Platform(p).(platform.Reconfigurer)
	if !ok {
		return nil, fmt.Errorf("harness: platform %s cannot reconfigure", p.Name())
	}

	pkts := tr.Packets()
	const window = 512
	// The change lands on the window boundary nearest mid-trace.
	changeAt := (len(pkts) / 2 / window) * window
	if changeAt == 0 {
		changeAt = window
	}

	res := &ReconfigResult{Platform: p.Name(), ChangeAt: changeAt}
	eng := p.Engine()
	b := platform.NewBatch(batch)
	prev := eng.Stats()
	changed := false

	for off := 0; off < len(pkts); off += window {
		if off == changeAt {
			gw, err := gateway.New(gateway.Config{
				Name:       "gw-live",
				NextHopMAC: [6]byte{2, 0, 0, 0, 0, 1},
			})
			if err != nil {
				return nil, err
			}
			if err := rec.Reconfigure(core.ChainPlan{Op: core.OpInsert, Pos: eng.ChainLen(), NF: gw}); err != nil {
				return nil, fmt.Errorf("harness: reconfigure: %w", err)
			}
			changed = true
		}
		end := off + window
		if end > len(pkts) {
			end = len(pkts)
		}
		for i := off; i < end; i += batch {
			j := i + batch
			if j > end {
				j = end
			}
			ms, err := p.ProcessBatch(pkts[i:j], b)
			if err != nil {
				return nil, fmt.Errorf("harness: batch at packet %d: %w", i, err)
			}
			for k := range ms {
				if ms[k].Result.Verdict == core.VerdictDrop {
					res.Drops++
				}
			}
		}
		st := eng.Stats()
		eligible := (st.Subsequent - prev.Subsequent) + (st.Final - prev.Final)
		w := ReconfigWindow{
			Start: off, Packets: end - off,
			Eligible: int(eligible), AfterChange: changed,
		}
		if eligible > 0 {
			w.HitRate = float64(st.FastPath-prev.FastPath) / float64(eligible)
		}
		res.Windows = append(res.Windows, w)
		prev = st
	}

	var preSum float64
	preN := 0
	for i, w := range res.Windows {
		if w.AfterChange {
			continue
		}
		if i == 0 {
			continue // warmup: tables start empty
		}
		preSum += w.HitRate
		preN++
	}
	if preN > 0 {
		res.Baseline = preSum / float64(preN)
	}
	res.Dip = 1
	for _, w := range res.Windows {
		if w.AfterChange && w.HitRate < res.Dip {
			res.Dip = w.HitRate
		}
	}
	if n := len(res.Windows); n > 0 {
		res.Recovered = res.Windows[n-1].HitRate
	}
	if res.Baseline > 0 {
		res.RecoveredFrac = res.Recovered / res.Baseline
	}
	res.Epoch = eng.Epoch()
	res.DegradedFlows = eng.DegradedFlows()
	return res, nil
}
