// Package harness implements the evaluation harness: one experiment
// driver per table and figure of the paper's §VII, each regenerating
// the corresponding rows or series from synthetic traces on the BESS
// and OpenNetVM platform models.
//
// Absolute numbers come from the calibrated cycle model
// (internal/cost) and are not expected to equal the paper's testbed
// measurements; the harness reproduces the *shapes* — who wins, by
// what factor, where crossovers fall. EXPERIMENTS.md records
// paper-versus-measured for every experiment.
package harness

import (
	"fmt"
	"strings"

	"github.com/fastpathnfv/speedybox/internal/classifier"
	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/cost"
	"github.com/fastpathnfv/speedybox/internal/flow"
	"github.com/fastpathnfv/speedybox/internal/nf/ipfilter"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/platform"
	"github.com/fastpathnfv/speedybox/internal/stats"
	"github.com/fastpathnfv/speedybox/internal/telemetry"
)

// Config is the common experiment configuration.
type Config struct {
	// Seed drives trace generation; equal seeds reproduce results
	// exactly.
	Seed int64
	// Flows is the trace size in flows; experiments pick sane
	// defaults when zero.
	Flows int
	// Telemetry, when non-nil, is attached to every engine the
	// experiments build, so a single admin endpoint observes the whole
	// sweep (the metric registry is idempotent across engines; scrape
	// callbacks reflect the most recently built one).
	Telemetry *telemetry.Hub
	// Batch > 1 drives every variant through the platform's
	// ProcessBatch in vectors of that size instead of per-packet
	// Process calls; 0 or 1 is scalar.
	Batch int
}

// options attaches the harness-wide telemetry hub (if any) to one
// variant's engine options.
func (c Config) options(base core.Options) core.Options {
	base.Telemetry = c.Telemetry
	return base
}

func (c Config) withDefaults(defaultFlows int) Config {
	if c.Flows == 0 {
		c.Flows = defaultFlows
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Partitioned separates a run's measurements into the packet classes
// the paper reports on: initial packets (first data packet of each
// flow) versus subsequent packets.
type Partitioned struct {
	InitWork []float64 // cycles
	SubWork  []float64
	InitLat  []float64 // cycles
	SubLat   []float64
	SubBott  []float64 // bottleneck cycles (throughput)
	// PerNFSub accumulates per-NF slow-path work of subsequent
	// packets (Table III's per-NF columns); only populated on the
	// baseline where subsequent packets traverse the chain.
	PerNFSub map[string][]float64
	// FlowCycles is each flow's total processing latency.
	FlowCycles map[flow.FID]uint64
	Drops      int
	Packets    int
	Stats      core.Stats
	model      *cost.Model
}

// runPartitioned feeds the packets through the platform — per packet,
// or in batch-packet vectors when batch > 1 — and partitions per-packet
// measurements. Handshake and FIN packets are excluded from the
// init/sub buckets (the paper's microbenchmarks measure data packets)
// but still contribute to flow processing time.
func runPartitioned(p platform.Platform, pkts []*packet.Packet, batch int) (*Partitioned, error) {
	out := &Partitioned{
		PerNFSub:   make(map[string][]float64),
		FlowCycles: make(map[flow.FID]uint64),
		model:      p.Model(),
	}
	seen := make(map[flow.FID]bool)
	fold := func(m *platform.Measurement) {
		out.Packets++
		res := m.Result
		if res.Verdict == core.VerdictDrop {
			out.Drops++
		}
		out.FlowCycles[res.FID] += m.LatencyCycles

		switch res.Kind {
		case classifier.KindHandshake, classifier.KindFinal:
			return
		}
		if !seen[res.FID] {
			seen[res.FID] = true
			out.InitWork = append(out.InitWork, float64(m.WorkCycles))
			out.InitLat = append(out.InitLat, float64(m.LatencyCycles))
			return
		}
		out.SubWork = append(out.SubWork, float64(m.WorkCycles))
		out.SubLat = append(out.SubLat, float64(m.LatencyCycles))
		out.SubBott = append(out.SubBott, float64(m.BottleneckCycles))
		if res.Slow != nil {
			for _, s := range res.Slow.PerNF {
				out.PerNFSub[s.Name] = append(out.PerNFSub[s.Name], float64(s.Cycles))
			}
		}
	}
	if batch > 1 {
		b := platform.NewBatch(batch)
		for off := 0; off < len(pkts); off += batch {
			end := off + batch
			if end > len(pkts) {
				end = len(pkts)
			}
			ms, err := p.ProcessBatch(pkts[off:end], b)
			if err != nil {
				return nil, fmt.Errorf("harness: batch at packet %d on %s: %w", off, p.Name(), err)
			}
			for i := range ms {
				fold(&ms[i])
			}
		}
	} else {
		for i, pkt := range pkts {
			m, err := p.Process(pkt)
			if err != nil {
				return nil, fmt.Errorf("harness: packet %d on %s: %w", i, p.Name(), err)
			}
			fold(&m)
		}
	}
	out.Stats = p.Engine().Stats()
	return out, nil
}

// MeanSubWork returns the mean subsequent-packet work cycles.
func (p *Partitioned) MeanSubWork() float64 { return mean(p.SubWork) }

// MeanInitWork returns the mean initial-packet work cycles.
func (p *Partitioned) MeanInitWork() float64 { return mean(p.InitWork) }

// MeanSubLatencyMicros returns the mean subsequent-packet latency.
func (p *Partitioned) MeanSubLatencyMicros() float64 {
	return p.model.CyclesToMicros(1) * mean(p.SubLat)
}

// SubRateMpps returns the steady-state processing rate implied by the
// mean subsequent-packet bottleneck occupancy.
func (p *Partitioned) SubRateMpps() float64 {
	return p.model.RateMpps(mean(p.SubBott))
}

// FlowTimesMicros returns per-flow processing times in µs.
func (p *Partitioned) FlowTimesMicros() []float64 {
	out := make([]float64, 0, len(p.FlowCycles))
	for _, c := range p.FlowCycles {
		out = append(out, p.model.CyclesToMicros(c))
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// filterChain builds n IPFilter NFs with all-forward ACLs ("The ACL
// rules of the IPFilters are carefully modified to avoid packet
// drops", §VII-B2), each with a 100-rule blacklist to scan on new
// flows.
func filterChain(n int) ([]core.NF, error) {
	chain := make([]core.NF, n)
	for i := 0; i < n; i++ {
		f, err := ipfilter.New(ipfilter.Config{
			Name:  fmt.Sprintf("ipfilter%d", i+1),
			Rules: ipfilter.PadRules(nil, 100),
		})
		if err != nil {
			return nil, err
		}
		chain[i] = f
	}
	return chain, nil
}

// pct formats a reduction percentage.
func pct(orig, improved float64) string {
	return fmt.Sprintf("%+.1f%%", -stats.ReductionPercent(orig, improved))
}

// tableWriter accumulates aligned text tables for experiment output.
type tableWriter struct {
	sb   strings.Builder
	rows [][]string
}

func (t *tableWriter) title(s string) { fmt.Fprintf(&t.sb, "%s\n", s) }

func (t *tableWriter) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tableWriter) String() string {
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(&t.sb, "%-*s  ", widths[i], c)
		}
		t.sb.WriteString("\n")
	}
	return t.sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
