package harness

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/bess"
	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/onvm"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/platform"
)

// PlatformKind selects the execution platform model.
type PlatformKind int

// Platform kinds. Enum starts at one.
const (
	// PlatformBESS is the run-to-completion model.
	PlatformBESS PlatformKind = iota + 1
	// PlatformONVM is the pipelined model.
	PlatformONVM
)

// String returns the platform label.
func (k PlatformKind) String() string {
	switch k {
	case PlatformBESS:
		return "BESS"
	case PlatformONVM:
		return "OpenNetVM"
	default:
		return fmt.Sprintf("PlatformKind(%d)", int(k))
	}
}

// chainFactory builds a fresh chain; every platform variant gets its
// own NF instances so state never leaks between variants.
type chainFactory func() ([]core.NF, error)

// buildPlatform instantiates one platform variant.
func buildPlatform(kind PlatformKind, mk chainFactory, opts core.Options) (platform.Platform, error) {
	chain, err := mk()
	if err != nil {
		return nil, err
	}
	switch kind {
	case PlatformBESS:
		return bess.New(bess.Config{Chain: chain, Options: opts})
	case PlatformONVM:
		return onvm.New(onvm.Config{Chain: chain, Options: opts})
	default:
		return nil, fmt.Errorf("harness: unknown platform kind %d", int(kind))
	}
}

// runVariant builds a platform, runs the packets (scalar, or in
// batch-packet vectors when batch > 1) and partitions the
// measurements, closing the platform afterwards.
func runVariant(kind PlatformKind, mk chainFactory, opts core.Options, pkts []*packet.Packet, batch int) (*Partitioned, error) {
	p, err := buildPlatform(kind, mk, opts)
	if err != nil {
		return nil, err
	}
	defer func() { _ = p.Close() }()
	return runPartitioned(p, pkts, batch)
}
