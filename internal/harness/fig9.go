package harness

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/nf/ipfilter"
	"github.com/fastpathnfv/speedybox/internal/nf/maglev"
	"github.com/fastpathnfv/speedybox/internal/nf/mazunat"
	"github.com/fastpathnfv/speedybox/internal/nf/monitor"
	"github.com/fastpathnfv/speedybox/internal/nf/snort"
	"github.com/fastpathnfv/speedybox/internal/stats"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// Chain1 builds the paper's first real-world chain (§VII-B3, derived
// from the motivation example §II-A):
// MazuNAT -> Maglev -> Monitor -> IPFilter.
func Chain1() ([]core.NF, error) {
	nat, err := mazunat.New(mazunat.Config{
		Name:           "mazunat",
		InternalPrefix: [4]byte{10, 0, 0, 0},
		InternalBits:   8,
		ExternalIP:     [4]byte{198, 51, 100, 1},
	})
	if err != nil {
		return nil, err
	}
	lb, err := maglev.New(maglev.Config{
		Name: "maglev",
		Backends: []maglev.Backend{
			{Name: "backend-a", IP: [4]byte{192, 168, 1, 10}, Port: 8080},
			{Name: "backend-b", IP: [4]byte{192, 168, 1, 11}, Port: 8080},
			{Name: "backend-c", IP: [4]byte{192, 168, 1, 12}, Port: 8080},
		},
	})
	if err != nil {
		return nil, err
	}
	mon, err := monitor.New("monitor")
	if err != nil {
		return nil, err
	}
	fw, err := ipfilter.New(ipfilter.Config{
		Name:  "ipfilter",
		Rules: ipfilter.PadRules(nil, 100),
	})
	if err != nil {
		return nil, err
	}
	return []core.NF{nat, lb, mon, fw}, nil
}

// Chain2 builds the paper's second real-world chain (§VII-B3):
// IPFilter -> Snort -> Monitor.
func Chain2() ([]core.NF, error) {
	fw, err := ipfilter.New(ipfilter.Config{
		Name:  "ipfilter",
		Rules: ipfilter.PadRules(nil, 100),
	})
	if err != nil {
		return nil, err
	}
	ids, err := snort.New("snort", snort.DefaultRules())
	if err != nil {
		return nil, err
	}
	mon, err := monitor.New("monitor")
	if err != nil {
		return nil, err
	}
	return []core.NF{fw, ids, mon}, nil
}

// Fig9Series is one variant's flow-processing-time distribution.
type Fig9Series struct {
	Variant   string
	FlowTimes []float64 // µs
	P50       float64
}

// Fig9Row is one (chain, platform) comparison.
type Fig9Row struct {
	Chain    string
	Platform string
	Original Fig9Series
	SBox     Fig9Series
}

// P50Reduction returns the median flow-time reduction (paper: 39.6% /
// 40.2% on Chain 1, 41.3% / 34.2% on Chain 2).
func (r Fig9Row) P50Reduction() float64 {
	if r.Original.P50 == 0 {
		return 0
	}
	return (r.Original.P50 - r.SBox.P50) / r.Original.P50 * 100
}

// Fig9Result reproduces Figure 9: CDFs of flow processing time on
// datacenter-style traces through the two real-world chains.
type Fig9Result struct {
	Rows []Fig9Row
}

// RunFig9 executes one chain's experiment; chain is 1 or 2.
func RunFig9(cfg Config, chain int) (*Fig9Result, error) {
	cfg = cfg.withDefaults(150)
	var (
		mk   chainFactory
		name string
	)
	switch chain {
	case 1:
		mk, name = Chain1, "Chain 1 (MazuNAT+Maglev+Monitor+IPFilter)"
	case 2:
		mk, name = Chain2, "Chain 2 (IPFilter+Snort+Monitor)"
	default:
		return nil, fmt.Errorf("harness: unknown chain %d", chain)
	}
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		PayloadMin: 64, PayloadMax: 256,
		AlertFraction: 0.05, LogFraction: 0.1,
		Interleave: true,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	for _, kind := range []PlatformKind{PlatformBESS, PlatformONVM} {
		row := Fig9Row{Chain: name, Platform: kind.String()}
		orig, err := runVariant(kind, mk, cfg.options(core.BaselineOptions()), tr.Packets(), cfg.Batch)
		if err != nil {
			return nil, err
		}
		sbox, err := runVariant(kind, mk, cfg.options(core.DefaultOptions()), tr.Packets(), cfg.Batch)
		if err != nil {
			return nil, err
		}
		ot, st := orig.FlowTimesMicros(), sbox.FlowTimesMicros()
		row.Original = Fig9Series{Variant: kind.String(), FlowTimes: ot, P50: stats.Percentile(ot, 50)}
		row.SBox = Fig9Series{Variant: kind.String() + " w/ SBox", FlowTimes: st, P50: stats.Percentile(st, 50)}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatCDF renders the full empirical CDF series — the data behind
// the paper's Figure 9 plot — as "value fraction" columns per variant,
// ready for gnuplot or a spreadsheet.
func (r *Fig9Result) FormatCDF() string {
	t := &tableWriter{}
	if len(r.Rows) > 0 {
		t.title("Figure 9 CDF series — " + r.Rows[0].Chain)
	}
	for _, row := range r.Rows {
		for _, s := range []Fig9Series{row.Original, row.SBox} {
			t.row("# " + s.Variant)
			for _, pt := range stats.CDF(s.FlowTimes) {
				t.row(f1(pt.Value), f3(pt.Fraction))
			}
		}
	}
	return t.String()
}

// Format renders the CDF summaries the way the paper reports them.
func (r *Fig9Result) Format() string {
	t := &tableWriter{}
	if len(r.Rows) > 0 {
		t.title("Figure 9: CDF of flow processing time — " + r.Rows[0].Chain)
	}
	t.row("variant", "p10 (µs)", "p50 (µs)", "p90 (µs)", "p50 change")
	for _, row := range r.Rows {
		for _, s := range []Fig9Series{row.Original, row.SBox} {
			t.row(s.Variant,
				f1(stats.Percentile(s.FlowTimes, 10)),
				f1(s.P50),
				f1(stats.Percentile(s.FlowTimes, 90)),
				"")
		}
		t.row(fmt.Sprintf("-> %s p50 reduction", row.Platform), "", "", "",
			f1(row.P50Reduction())+"%")
	}
	return t.String()
}
