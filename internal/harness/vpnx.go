package harness

import (
	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/mat"
	"github.com/fastpathnfv/speedybox/internal/nf/monitor"
	"github.com/fastpathnfv/speedybox/internal/nf/snort"
	"github.com/fastpathnfv/speedybox/internal/nf/vpn"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// VPNXRow is one platform's numbers for the VPN-tunnel chain.
type VPNXRow struct {
	Platform     string
	OriginalWork float64
	SBoxWork     float64
	OriginalLat  float64 // µs
	SBoxLat      float64
}

// WorkReduction returns the cycle saving in percent.
func (r VPNXRow) WorkReduction() float64 {
	if r.OriginalWork == 0 {
		return 0
	}
	return (r.OriginalWork - r.SBoxWork) / r.OriginalWork * 100
}

// VPNXResult is an extension experiment beyond the paper's figures: a
// VPN tunnel segment (encap gateway -> Snort -> Monitor -> decap
// gateway) where the matched encap/decap pair cancels entirely under
// §V-B stack elimination. The original path pushes and pops an AH
// header (plus two checksum refreshes) on every packet; the
// consolidated fast path touches no headers at all. It quantifies the
// stack-elimination design choice in DESIGN.md.
type VPNXResult struct {
	Rows []VPNXRow
	// ResidualStackOps reports the consolidated rule's remaining
	// encap/decap work (must be zero: full cancellation).
	ResidualStackOps int
}

// vpnChain builds encap -> snort -> monitor -> decap.
func vpnChain() ([]core.NF, error) {
	enc, err := vpn.New(vpn.Config{Name: "vpn-in", Mode: vpn.ModeEncap})
	if err != nil {
		return nil, err
	}
	ids, err := snort.New("snort", snort.DefaultRules())
	if err != nil {
		return nil, err
	}
	mon, err := monitor.New("monitor")
	if err != nil {
		return nil, err
	}
	dec, err := vpn.New(vpn.Config{Name: "vpn-out", Mode: vpn.ModeDecap})
	if err != nil {
		return nil, err
	}
	return []core.NF{enc, ids, mon, dec}, nil
}

// RunVPNX executes the extension experiment.
func RunVPNX(cfg Config) (*VPNXResult, error) {
	cfg = cfg.withDefaults(60)
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		PayloadMin: 64, PayloadMax: 200,
		Interleave: true,
	})
	if err != nil {
		return nil, err
	}
	res := &VPNXResult{}
	for _, kind := range []PlatformKind{PlatformBESS, PlatformONVM} {
		orig, err := runVariant(kind, vpnChain, cfg.options(core.BaselineOptions()), tr.Packets(), cfg.Batch)
		if err != nil {
			return nil, err
		}
		// Inspect the consolidated rules on a dedicated platform so
		// we can look at the Global MAT before teardown.
		p, err := buildPlatform(kind, vpnChain, cfg.options(core.DefaultOptions()))
		if err != nil {
			return nil, err
		}
		sbox, err := runPartitioned(p, tr.Packets(), cfg.Batch)
		if err != nil {
			_ = p.Close()
			return nil, err
		}
		if kind == PlatformBESS {
			res.ResidualStackOps = maxResidualStackOps(p)
		}
		if err := p.Close(); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, VPNXRow{
			Platform:     kind.String(),
			OriginalWork: orig.MeanSubWork(),
			SBoxWork:     sbox.MeanSubWork(),
			OriginalLat:  orig.MeanSubLatencyMicros(),
			SBoxLat:      sbox.MeanSubLatencyMicros(),
		})
	}
	return res, nil
}

func maxResidualStackOps(p interface {
	Engine() *core.Engine
}) int {
	worst := 0
	p.Engine().Global().ForEach(func(rule *mat.GlobalRule) {
		_, stackOps, _ := rule.HeaderWork()
		if stackOps > worst {
			worst = stackOps
		}
	})
	return worst
}

// Format renders the extension experiment.
func (r *VPNXResult) Format() string {
	t := &tableWriter{}
	t.title("Extension: VPN tunnel segment — encap/decap stack elimination (§V-B)")
	t.row("platform", "orig cycles", "SBox cycles", "change", "orig lat (µs)", "SBox lat (µs)")
	for _, row := range r.Rows {
		t.row(row.Platform,
			f1(row.OriginalWork), f1(row.SBoxWork), pct(row.OriginalWork, row.SBoxWork),
			f3(row.OriginalLat), f3(row.SBoxLat))
	}
	t.row("residual stack ops in consolidated rules:", itoa(r.ResidualStackOps), "", "", "", "")
	return t.String()
}

func itoa(n int) string { return f1(float64(n)) }
