package harness

import (
	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/nf/monitor"
	"github.com/fastpathnfv/speedybox/internal/nf/snort"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// snortMonitorChain is the Figure 6/7 chain: Snort followed by
// Monitor; both have header actions and state functions, so both
// optimizations apply simultaneously (§VII-B1).
func snortMonitorChain() ([]core.NF, error) {
	ids, err := snort.New("snort", snort.DefaultRules())
	if err != nil {
		return nil, err
	}
	mon, err := monitor.New("monitor")
	if err != nil {
		return nil, err
	}
	return []core.NF{ids, mon}, nil
}

// Fig6Row is one platform's Snort+Monitor numbers.
type Fig6Row struct {
	Platform     string
	OriginalWork float64 // CPU cycles per packet
	SBoxWork     float64
	OriginalMpps float64
	SBoxMpps     float64
}

// WorkReduction returns the per-packet cycle reduction in percent
// (paper: 46.3% BESS, 47.4% ONVM).
func (r Fig6Row) WorkReduction() float64 {
	if r.OriginalWork == 0 {
		return 0
	}
	return (r.OriginalWork - r.SBoxWork) / r.OriginalWork * 100
}

// RateImprovement returns the processing-rate gain in percent (paper:
// +32.1% BESS, ~0% ONVM).
func (r Fig6Row) RateImprovement() float64 {
	if r.OriginalMpps == 0 {
		return 0
	}
	return (r.SBoxMpps - r.OriginalMpps) / r.OriginalMpps * 100
}

// Fig6Result reproduces Figure 6: consolidation and parallelism on the
// Snort+Monitor chain.
type Fig6Result struct {
	Rows []Fig6Row
}

// RunFig6 executes the experiment.
func RunFig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults(80)
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		PayloadMin: 64, PayloadMax: 200,
		AlertFraction: 0.05, LogFraction: 0.1,
		Interleave: true,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	for _, kind := range []PlatformKind{PlatformBESS, PlatformONVM} {
		orig, err := runVariant(kind, snortMonitorChain, cfg.options(core.BaselineOptions()), tr.Packets(), cfg.Batch)
		if err != nil {
			return nil, err
		}
		sbox, err := runVariant(kind, snortMonitorChain, cfg.options(core.DefaultOptions()), tr.Packets(), cfg.Batch)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig6Row{
			Platform:     kind.String(),
			OriginalWork: orig.MeanSubWork(),
			SBoxWork:     sbox.MeanSubWork(),
			OriginalMpps: orig.SubRateMpps(),
			SBoxMpps:     sbox.SubRateMpps(),
		})
	}
	return res, nil
}

// Format renders both panels.
func (r *Fig6Result) Format() string {
	t := &tableWriter{}
	t.title("Figure 6: Snort+Monitor chain — consolidation and parallelism")
	t.row("platform", "orig cycles", "SBox cycles", "cycle change", "orig Mpps", "SBox Mpps", "rate change")
	for _, row := range r.Rows {
		t.row(row.Platform,
			f1(row.OriginalWork), f1(row.SBoxWork), pct(row.OriginalWork, row.SBoxWork),
			f3(row.OriginalMpps), f3(row.SBoxMpps), pct(row.OriginalMpps, row.SBoxMpps))
	}
	return t.String()
}
