package harness

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/chainspec"
	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/fault"
	"github.com/fastpathnfv/speedybox/internal/nf/monitor"
	"github.com/fastpathnfv/speedybox/internal/nf/snort"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/topo"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// The multi-chain oracle extends the differential property to
// topologies: three chains with different semantics (a pass-through
// IDS chain, a MAC-rewriting VoIP chain, a DoS-filtered bulk chain)
// share a monitor instance and split flows by destination port across
// three tenants with deliberately tight quotas. Every packet runs
// through the fast topology (SpeedyBox engines, fault injector, tenant
// admission) and through a pure slow-path reference topology built
// from the same spec, in lockstep; admission denials must never change
// a verdict, reconfigurations and crash-restores on one chain must
// never leak into another, and the shared NF must accumulate the
// identical state either way.

// Per-chain service ports of the fixed oracle topology.
const (
	topoWebPort  = 80
	topoVoipPort = 5060
	topoBulkPort = 9000
)

// topoOracleSpec is the fixed topology every topo schedule runs.
func topoOracleSpec() *topo.Spec {
	return &topo.Spec{
		Name: "oracle",
		Chains: []topo.ChainSpec{
			{Name: "web", Weight: 2, NFs: []chainspec.NFSpec{
				{Type: "ipfilter", ACLSize: 100},
				{Type: "monitor", Name: "mon"},
				{Type: "snort", Name: "ids"},
			}},
			{Name: "voip", NFs: []chainspec.NFSpec{
				{Type: "gateway", Name: "voip-gw", NextHopMAC: "02:00:00:00:00:01",
					VoicePorts: []uint16{topoVoipPort}},
				{Type: "monitor", Name: "mon"},
			}},
			{Name: "bulk", NFs: []chainspec.NFSpec{
				{Type: "dos"},
				{Type: "ipfilter", ACLSize: 50},
				{Type: "monitor", Name: "mon"},
			}},
		},
		Policies: []topo.PolicySpec{
			{Chain: "voip", Tenant: 2, DstPortMin: topoVoipPort},
			{Chain: "bulk", Tenant: 3, DstPortMin: topoBulkPort},
			{Chain: "web", Tenant: 1, DstPortMin: topoWebPort},
		},
		// Tenant 2's quotas are deliberately tight so admission denials
		// actually fire under the oracle — proving they are
		// verdict-neutral, not just plausible.
		Tenants: []topo.TenantSpec{
			{ID: 1, RuleQuota: 64, EventCap: 128},
			{ID: 2, RuleQuota: 4, EventCap: 8},
			{ID: 3},
		},
	}
}

// topoTrace builds the schedule's merged three-service trace: one
// sub-trace per chain port, interleaved round-robin (each sub-trace's
// internal arrival order — hence per-flow order — is preserved).
func topoTrace(seed int64, flows int) ([]*packet.Packet, error) {
	per := flows/3 + 1
	var streams [][]*packet.Packet
	for i, port := range []uint16{topoWebPort, topoVoipPort, topoBulkPort} {
		tr, err := trace.Generate(trace.Config{
			Seed: seed + int64(i), Flows: per,
			AlertFraction: 0.15, LogFraction: 0.15,
			DstPort:    port,
			Interleave: true,
		})
		if err != nil {
			return nil, err
		}
		streams = append(streams, tr.Packets())
	}
	var out []*packet.Packet
	for k := 0; ; k++ {
		emitted := false
		for _, s := range streams {
			if k < len(s) {
				out = append(out, s[k])
				emitted = true
			}
		}
		if !emitted {
			return out, nil
		}
	}
}

// cloneAll deep-copies a packet slice so the reference and the fast
// topology each consume an independent stream.
func cloneAll(pkts []*packet.Packet) []*packet.Packet {
	out := make([]*packet.Packet, len(pkts))
	for i, p := range pkts {
		out[i] = p.Clone()
	}
	return out
}

// runTopoSchedule replays one fault schedule through the fast topology
// and its pure slow-path reference.
func runTopoSchedule(cfg OracleConfig, sched int, seed int64, rates map[fault.Kind]float64, res *OracleResult) error {
	spec := topoOracleSpec()
	pkts, err := topoTrace(seed, cfg.Flows)
	if err != nil {
		return err
	}
	refPkts, fastPkts := cloneAll(pkts), cloneAll(pkts)

	refTopo, err := topo.Build(spec, topo.BuildConfig{Options: core.BaselineOptions()})
	if err != nil {
		return err
	}
	inj := fault.New(fault.Config{Seed: seed, Rates: rates})
	fastOpts := core.DefaultOptions()
	fastOpts.Faults = inj
	fastTopo, err := topo.Build(spec, topo.BuildConfig{Options: fastOpts})
	if err != nil {
		return err
	}
	fastTopo.TamperRoute = cfg.TamperRoute

	diverge := func(pkt int, format string, args ...any) {
		res.Divergences = append(res.Divergences, OracleDivergence{
			Schedule: sched, Seed: seed, Packet: pkt,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// Reconfigurations target one chain per schedule, rotating across
	// schedules; the same plans apply to the reference chain at the
	// same packet indices.
	target := sched % fastTopo.NumChains()
	var reEvents []reconfigEvent
	if cfg.Reconfigs > 0 {
		names := chainNamesOf(spec.Chains[target])
		reEvents = buildReconfigEvents(seed, cfg.Reconfigs, len(refPkts), names)
	}
	nextRe := 0
	var appliedRe []reconfigEvent
	applyReconfig := func(ev reconfigEvent) error {
		fastPlan, err := ev.mk()
		if err != nil {
			return err
		}
		if ferr := fastTopo.Engine(target).Reconfigure(fastPlan); ferr != nil {
			if errors.Is(ferr, core.ErrReconfigAborted) {
				res.ReconfigAborts++
			}
			return nil
		}
		refPlan, err := ev.mk()
		if err != nil {
			return err
		}
		if rerr := refTopo.Engine(target).Reconfigure(refPlan); rerr != nil {
			return fmt.Errorf("reference reconfigure (%s): %v", refPlan, rerr)
		}
		res.Reconfigs++
		appliedRe = append(appliedRe, ev)
		return nil
	}

	var crashes []fault.Crash
	if cfg.Crashes > 0 {
		inj.SetRate(fault.KindCrashRestore, float64(cfg.Crashes-1)/4+0.05)
		crashes = inj.CrashPlan(len(refPkts))
	}
	nextCrash := 0

	// crashRestore kills the whole fast topology: every chain engine
	// is checkpointed at the kill point, the topology (shared NFs
	// included) is rebuilt from the spec, surviving reconfigurations
	// replay onto the target chain, and RestoreAll rehydrates each
	// engine. The reference runs on uninterrupted.
	crashRestore := func() error {
		cps, err := fastTopo.CheckpointAll()
		if err != nil {
			return fmt.Errorf("crash checkpoint: %w", err)
		}
		for i := 0; i < fastTopo.NumChains(); i++ {
			st := fastTopo.Engine(i).Stats()
			res.Fallbacks += st.SlowPathFallbacks
			res.Degraded += st.DegradedPackets
			res.Recoveries += st.FaultRecoveries
		}
		ntopo, err := topo.Build(spec, topo.BuildConfig{Options: fastOpts})
		if err != nil {
			return err
		}
		abortRate := inj.Rate(fault.KindReconfigAbort)
		inj.SetRate(fault.KindReconfigAbort, 0)
		for _, ev := range appliedRe {
			plan, err := ev.mk()
			if err != nil {
				return err
			}
			if rerr := ntopo.Engine(target).Reconfigure(plan); rerr != nil {
				return fmt.Errorf("crash rebuild reconfigure (%s): %v", plan, rerr)
			}
		}
		inj.SetRate(fault.KindReconfigAbort, abortRate)
		if err := ntopo.RestoreAll(cps); err != nil {
			return fmt.Errorf("crash restore: %w", err)
		}
		ntopo.TamperRoute = cfg.TamperRoute
		fastTopo = ntopo
		res.CrashRestores++
		return nil
	}

	batches := make([]*core.Batch, fastTopo.NumChains())

	i := 0
scan:
	for i < len(refPkts) {
		for nextCrash < len(crashes) && crashes[nextCrash].At <= i {
			nextCrash++
			if err := crashRestore(); err != nil {
				return fmt.Errorf("packet %d: %w", i, err)
			}
		}
		for nextRe < len(reEvents) && reEvents[nextRe].at <= i {
			ev := reEvents[nextRe]
			nextRe++
			if err := applyReconfig(ev); err != nil {
				return err
			}
		}
		// One packet, or one same-chain vector clipped at the next
		// reconfiguration or crash index and at chain boundaries, so
		// every packet of a batch observes the same topology state as
		// its scalar reference twin.
		chain := fastTopo.Route(fastPkts[i])
		end := i + 1
		if cfg.Batch > 1 {
			lim := i + cfg.Batch
			if lim > len(refPkts) {
				lim = len(refPkts)
			}
			if nextRe < len(reEvents) && reEvents[nextRe].at < lim {
				lim = reEvents[nextRe].at
			}
			if nextCrash < len(crashes) && crashes[nextCrash].At < lim {
				lim = crashes[nextCrash].At
			}
			for end < lim && fastTopo.Route(fastPkts[end]) == chain {
				end++
			}
		}
		var fastResults []*core.PacketResult
		if cfg.Batch > 1 {
			if batches[chain] == nil {
				batches[chain] = core.NewBatch(cfg.Batch)
			}
			fastResults, err = fastTopo.Engine(chain).ProcessBatch(fastPkts[i:end], batches[chain])
			if err != nil {
				return fmt.Errorf("packet %d: fast batch err %v", i, err)
			}
		}
		for k := i; k < end; k++ {
			refRes, refChain, refErr := refTopo.Process(refPkts[k])
			var fastRes *core.PacketResult
			var fastErr error
			if fastResults != nil {
				fastRes = fastResults[k-i]
			} else {
				fastRes, fastErr = fastTopo.Engine(chain).ProcessPacket(fastPkts[k])
			}
			if refErr != nil || fastErr != nil {
				return fmt.Errorf("packet %d: ref err %v, fast err %v", k, refErr, fastErr)
			}
			_ = refChain
			res.Packets++
			if refRes.Verdict != fastRes.Verdict {
				diverge(k, "verdict: ref %v, fast %v", refRes.Verdict, fastRes.Verdict)
				break scan
			}
			if refPkts[k].Dropped() != fastPkts[k].Dropped() {
				diverge(k, "dropped: ref %v, fast %v", refPkts[k].Dropped(), fastPkts[k].Dropped())
				break scan
			}
			if !refPkts[k].Dropped() && !bytes.Equal(refPkts[k].Data(), fastPkts[k].Data()) {
				diverge(k, "rewritten bytes differ (%d vs %d bytes)",
					len(refPkts[k].Data()), len(fastPkts[k].Data()))
				break scan
			}
		}
		i = end
	}

	// End-of-trace shared-NF observables: the monitor instance every
	// chain shares and the web chain's IDS must have accumulated the
	// identical state down both topologies.
	if rm, fm := refTopo.NF("mon"), fastTopo.NF("mon"); rm != nil && fm != nil {
		if rc, fc := rm.(*monitor.Monitor).Totals(), fm.(*monitor.Monitor).Totals(); rc != fc {
			diverge(-1, "shared monitor counters: ref %+v, fast %+v", rc, fc)
		}
	}
	if ri, fi := refTopo.NF("ids"), fastTopo.NF("ids"); ri != nil && fi != nil {
		rl, fl := ri.(*snort.Snort).Logs(), fi.(*snort.Snort).Logs()
		if len(rl) != len(fl) {
			diverge(-1, "snort logs: ref %d entries, fast %d", len(rl), len(fl))
		} else {
			for j := range rl {
				if rl[j].RuleID != fl[j].RuleID || rl[j].Type != fl[j].Type {
					diverge(-1, "snort log %d: ref (%d,%v), fast (%d,%v)",
						j, rl[j].RuleID, rl[j].Type, fl[j].RuleID, fl[j].Type)
					break
				}
			}
		}
	}

	for i := 0; i < fastTopo.NumChains(); i++ {
		st := fastTopo.Engine(i).Stats()
		res.Fallbacks += st.SlowPathFallbacks
		res.Degraded += st.DegradedPackets
		res.Recoveries += st.FaultRecoveries
	}
	res.Injected += inj.InjectedTotal()
	return nil
}

// chainNamesOf resolves the instance names a topo chain spec produces,
// mirroring topo.Build's naming (explicit name, else "chain.typeN").
func chainNamesOf(cs topo.ChainSpec) []string {
	names := make([]string, len(cs.NFs))
	for i, n := range cs.NFs {
		if n.Name != "" {
			names[i] = n.Name
		} else {
			names[i] = fmt.Sprintf("%s.%s%d", cs.Name, n.Type, i+1)
		}
	}
	return names
}
