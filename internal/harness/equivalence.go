package harness

import (
	"bytes"
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/nf/maglev"
	"github.com/fastpathnfv/speedybox/internal/nf/monitor"
	"github.com/fastpathnfv/speedybox/internal/nf/snort"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/platform"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// EquivCheck is one equivalence case study's outcome.
type EquivCheck struct {
	Name   string
	Passed bool
	Detail string
}

// EquivResult reproduces the §VII-C empirical equivalence tests.
type EquivResult struct {
	Checks []EquivCheck
}

// AllPassed reports whether every check held.
func (r *EquivResult) AllPassed() bool {
	for _, c := range r.Checks {
		if !c.Passed {
			return false
		}
	}
	return len(r.Checks) > 0
}

// Format renders the outcomes.
func (r *EquivResult) Format() string {
	t := &tableWriter{}
	t.title("§VII-C: Empirical equivalence tests")
	t.row("check", "result", "detail")
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Passed {
			status = "FAIL"
		}
		t.row(c.Name, status, c.Detail)
	}
	return t.String()
}

// RunEquivalence executes all three case studies.
func RunEquivalence(cfg Config) (*EquivResult, error) {
	cfg = cfg.withDefaults(50)
	res := &EquivResult{}

	snortCheck, err := equivSnortBranches(cfg)
	if err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, snortCheck)

	maglevCheck, err := equivMaglevEvent()
	if err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, maglevCheck)

	for chain := 1; chain <= 2; chain++ {
		c, err := equivRealWorldChain(cfg, chain)
		if err != nil {
			return nil, err
		}
		res.Checks = append(res.Checks, c)
	}
	return res, nil
}

// equivSnortBranches is §VII-C1: flows matching all three rule types
// must produce identical log outputs with and without SpeedyBox.
func equivSnortBranches(cfg Config) (EquivCheck, error) {
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: 60,
		AlertFraction: 0.3, LogFraction: 0.3,
		Interleave: true,
	})
	if err != nil {
		return EquivCheck{}, err
	}
	run := func(opts core.Options) ([]snort.LogEntry, error) {
		ids, err := snort.New("snort", snort.DefaultRules())
		if err != nil {
			return nil, err
		}
		p, err := buildPlatform(PlatformBESS, func() ([]core.NF, error) {
			return []core.NF{ids}, nil
		}, opts)
		if err != nil {
			return nil, err
		}
		defer func() { _ = p.Close() }()
		if cfg.Batch > 1 {
			if _, err := platform.RunBatch(p, tr.Packets(), cfg.Batch, nil); err != nil {
				return nil, err
			}
		} else if _, err := platform.Run(p, tr.Packets()); err != nil {
			return nil, err
		}
		return ids.Logs(), nil
	}
	base, err := run(cfg.options(core.BaselineOptions()))
	if err != nil {
		return EquivCheck{}, err
	}
	sbox, err := run(cfg.options(core.DefaultOptions()))
	if err != nil {
		return EquivCheck{}, err
	}
	check := EquivCheck{Name: "Snort Pass/Alert/Log branches"}
	if len(base) == 0 {
		check.Detail = "no logs produced; vacuous"
		return check, nil
	}
	same := len(base) == len(sbox)
	if same {
		for i := range base {
			if base[i].RuleID != sbox[i].RuleID || base[i].Type != sbox[i].Type {
				same = false
				break
			}
		}
	}
	check.Passed = same
	check.Detail = fmt.Sprintf("%d log entries, identical=%v", len(base), same)
	return check, nil
}

// equivMaglevEvent is §VII-C2: a 10-packet flow whose backend fails
// after the fifth packet; packets 1-5 must carry ip1, packets 6-10
// ip2, and the payloads must be preserved.
func equivMaglevEvent() (EquivCheck, error) {
	lb, err := maglev.New(maglev.Config{
		Name: "maglev",
		Backends: []maglev.Backend{
			{Name: "b0", IP: [4]byte{192, 168, 9, 1}, Port: 80},
			{Name: "b1", IP: [4]byte{192, 168, 9, 2}, Port: 80},
		},
	})
	if err != nil {
		return EquivCheck{}, err
	}
	p, err := buildPlatform(PlatformBESS, func() ([]core.NF, error) {
		return []core.NF{lb}, nil
	}, core.DefaultOptions())
	if err != nil {
		return EquivCheck{}, err
	}
	defer func() { _ = p.Close() }()

	mkPkt := func(i int) *packet.Packet {
		return packet.MustBuild(packet.Spec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{100, 0, 0, 9},
			SrcPort: 7777, DstPort: 80, Proto: packet.ProtoTCP,
			TCPFlags: packet.TCPFlagACK, Seq: uint32(i),
			Payload: []byte(fmt.Sprintf("pkt-%02d", i)),
		})
	}
	var dips [][4]byte
	var payloadsOK = true
	failedIdx := -1
	for i := 1; i <= 10; i++ {
		if i == 6 && failedIdx >= 0 {
			if err := lb.FailBackend(failedIdx); err != nil {
				return EquivCheck{}, err
			}
		}
		pkt := mkPkt(i)
		if _, err := p.Process(pkt); err != nil {
			return EquivCheck{}, err
		}
		if i == 1 {
			// Identify which backend the flow pinned so we can fail it.
			switch pkt.DstIP() {
			case [4]byte{192, 168, 9, 1}:
				failedIdx = 0
			case [4]byte{192, 168, 9, 2}:
				failedIdx = 1
			}
		}
		dips = append(dips, pkt.DstIP())
		if !bytes.Equal(pkt.Payload(), []byte(fmt.Sprintf("pkt-%02d", i))) {
			payloadsOK = false
		}
	}
	check := EquivCheck{Name: "Maglev mid-stream event (pkt 6 of 10)"}
	ip1 := dips[0]
	switchedAt := -1
	consistent := true
	for i, d := range dips {
		if d != ip1 {
			if switchedAt == -1 {
				switchedAt = i + 1
			}
			if d != dips[len(dips)-1] {
				consistent = false
			}
		} else if switchedAt != -1 {
			consistent = false // flipped back
		}
	}
	check.Passed = switchedAt == 6 && consistent && payloadsOK && dips[9] != ip1
	check.Detail = fmt.Sprintf("DIP switched at packet %d (want 6), payloads preserved=%v", switchedAt, payloadsOK)
	return check, nil
}

// equivRealWorldChain is §VII-C3: a trace through a real-world chain,
// with Maglev backend failure injected mid-stream on Chain 1;
// packet outputs, Monitor counters and Snort logs must match between
// the original chain and SpeedyBox.
func equivRealWorldChain(cfg Config, chain int) (EquivCheck, error) {
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed + int64(chain), Flows: cfg.Flows,
		AlertFraction: 0.1, LogFraction: 0.1,
		Interleave: true,
	})
	if err != nil {
		return EquivCheck{}, err
	}
	type observation struct {
		outs     [][]byte
		drops    []bool
		counters monitor.Counters
		logs     int
	}
	run := func(opts core.Options) (*observation, error) {
		var mon *monitor.Monitor
		var ids *snort.Snort
		var lb *maglev.Maglev
		mk := func() ([]core.NF, error) {
			var (
				nfs []core.NF
				err error
			)
			switch chain {
			case 1:
				nfs, err = Chain1()
			default:
				nfs, err = Chain2()
			}
			if err != nil {
				return nil, err
			}
			for _, nf := range nfs {
				switch v := nf.(type) {
				case *monitor.Monitor:
					mon = v
				case *snort.Snort:
					ids = v
				case *maglev.Maglev:
					lb = v
				}
			}
			return nfs, nil
		}
		p, err := buildPlatform(PlatformBESS, mk, opts)
		if err != nil {
			return nil, err
		}
		defer func() { _ = p.Close() }()
		obs := &observation{}
		pkts := tr.Packets()
		failAt := len(pkts) / 2
		for i, pkt := range pkts {
			if lb != nil && i == failAt {
				// Mid-stream backend failure: its conn-tracked flows
				// (roughly a third — the paper sets events on 20% of
				// flows) get rerouted by their events.
				if err := lb.FailBackend(0); err != nil {
					return nil, err
				}
			}
			if _, err := p.Process(pkt); err != nil {
				return nil, err
			}
			obs.outs = append(obs.outs, append([]byte(nil), pkt.Data()...))
			obs.drops = append(obs.drops, pkt.Dropped())
		}
		if mon != nil {
			obs.counters = mon.Totals()
		}
		if ids != nil {
			obs.logs = len(ids.Logs())
		}
		return obs, nil
	}
	base, err := run(cfg.options(core.BaselineOptions()))
	if err != nil {
		return EquivCheck{}, err
	}
	sbox, err := run(cfg.options(core.DefaultOptions()))
	if err != nil {
		return EquivCheck{}, err
	}
	check := EquivCheck{Name: fmt.Sprintf("Real-world chain %d (mid-stream events)", chain)}
	same := true
	for i := range base.outs {
		if base.drops[i] != sbox.drops[i] || !bytes.Equal(base.outs[i], sbox.outs[i]) {
			same = false
			break
		}
	}
	countersOK := base.counters == sbox.counters
	logsOK := base.logs == sbox.logs
	check.Passed = same && countersOK && logsOK
	check.Detail = fmt.Sprintf("outputs=%v counters=%v snortLogs=%v (%d pkts)",
		same, countersOK, logsOK, len(base.outs))
	return check, nil
}
