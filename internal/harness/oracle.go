package harness

import (
	"bytes"
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/fault"
	"github.com/fastpathnfv/speedybox/internal/mat"
	"github.com/fastpathnfv/speedybox/internal/nf/maglev"
	"github.com/fastpathnfv/speedybox/internal/nf/monitor"
	"github.com/fastpathnfv/speedybox/internal/nf/snort"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// The differential equivalence oracle generalizes the paper's three
// hand-written §VII-C case studies into a property checked under
// thousands of randomized fault schedules: every trace runs twice —
// through a pure slow-path reference engine (the unmodified chain,
// which is correct by definition) and through full SpeedyBox with a
// seeded fault injector attacking its control plane — and every packet
// must leave both engines with the identical verdict, identical drop
// state and identical rewritten bytes, with identical NF-observable
// side effects (Monitor counters, Snort logs) at the end of the trace.
// Backend flaps are environmental (the pool genuinely changed), so the
// injector's deterministic FlapPlan is applied to both engines at the
// same packet indices.

// OracleConfig configures a differential-oracle run.
type OracleConfig struct {
	// Seed derives every schedule's trace and fault seeds; equal seeds
	// reproduce every divergence exactly.
	Seed int64
	// Schedules is how many randomized fault schedules to run
	// (default 200; CI runs 200, the acceptance bar is 1000).
	Schedules int
	// Flows is the per-schedule trace size (default 24).
	Flows int
	// Chain picks the service chain: 1 or 2 (§VII-B3); 0 alternates
	// per schedule.
	Chain int
	// Batch > 1 drives the fast engine through ProcessBatch in vectors
	// of that size (the reference engine stays scalar — its correctness
	// is definitional), proving the batched data path bit-identical to
	// per-packet execution under the same fault schedules. Vectors are
	// clipped at backend-flap indices so every packet of a batch
	// observes the same pool state as its reference twin.
	Batch int
	// Rates overrides the per-kind injection rates; nil selects a
	// uniform moderate-chaos default across every fault kind.
	Rates map[fault.Kind]float64
	// TamperRule, when set, corrupts the flow's consolidated rule
	// after each fast-engine packet. Test-only: it exists to prove the
	// oracle has teeth — a deliberately broken consolidation must be
	// caught as a divergence.
	TamperRule func(*mat.GlobalRule)
}

// OracleDivergence pinpoints one fast/slow-path disagreement.
type OracleDivergence struct {
	// Schedule and Seed identify the failing schedule (re-run with
	// this seed to reproduce).
	Schedule int
	Seed     int64
	// Packet is the trace index of the diverging packet, -1 for
	// end-of-trace state divergences.
	Packet int
	// Detail describes what disagreed.
	Detail string
}

// OracleResult aggregates a differential-oracle run.
type OracleResult struct {
	Schedules int
	Packets   int
	// Injected totals the faults fired across all schedules.
	Injected uint64
	// Fallbacks, Degraded and Recoveries total the fast engines'
	// degradation counters, proving the graceful-degradation machinery
	// actually engaged while equivalence held.
	Fallbacks  uint64
	Degraded   uint64
	Recoveries uint64
	// Divergences lists every disagreement (empty on a pass; capped —
	// a broken engine would otherwise produce one per packet).
	Divergences []OracleDivergence
}

// maxDivergences caps how many divergences a run collects before
// aborting early.
const maxDivergences = 16

// Passed reports whether every packet of every schedule agreed.
func (r *OracleResult) Passed() bool {
	return r.Schedules > 0 && len(r.Divergences) == 0
}

// Format renders the oracle outcome.
func (r *OracleResult) Format() string {
	t := &tableWriter{}
	t.title("Differential fast/slow-path equivalence oracle (randomized fault schedules)")
	t.row("schedules", "packets", "faults injected", "fallbacks", "degraded pkts", "recoveries", "divergences", "result")
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	t.row(fmt.Sprintf("%d", r.Schedules), fmt.Sprintf("%d", r.Packets),
		fmt.Sprintf("%d", r.Injected), fmt.Sprintf("%d", r.Fallbacks),
		fmt.Sprintf("%d", r.Degraded), fmt.Sprintf("%d", r.Recoveries),
		fmt.Sprintf("%d", len(r.Divergences)), status)
	out := t.String()
	for _, d := range r.Divergences {
		out += fmt.Sprintf("  divergence: schedule %d (seed %d) packet %d: %s\n",
			d.Schedule, d.Seed, d.Packet, d.Detail)
	}
	return out
}

// RunOracle executes the differential equivalence oracle.
func RunOracle(cfg OracleConfig) (*OracleResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Schedules == 0 {
		cfg.Schedules = 200
	}
	if cfg.Flows == 0 {
		cfg.Flows = 24
	}
	rates := cfg.Rates
	if rates == nil {
		rates = fault.UniformRates(0.08)
	}
	res := &OracleResult{}
	for s := 0; s < cfg.Schedules; s++ {
		seed := cfg.Seed + int64(s)*7919
		chain := cfg.Chain
		if chain == 0 {
			chain = 1 + s%2
		}
		if err := runOracleSchedule(cfg, s, seed, chain, rates, res); err != nil {
			return nil, fmt.Errorf("harness: oracle schedule %d (seed %d): %w", s, seed, err)
		}
		res.Schedules++
		if len(res.Divergences) >= maxDivergences {
			break
		}
	}
	return res, nil
}

// oracleChain is one engine's chain with its observable NFs picked out.
type oracleChain struct {
	nfs []core.NF
	lb  *maglev.Maglev
	mon *monitor.Monitor
	ids *snort.Snort
}

func buildOracleChain(chain int) (*oracleChain, error) {
	var (
		nfs []core.NF
		err error
	)
	switch chain {
	case 1:
		nfs, err = Chain1()
	default:
		nfs, err = Chain2()
	}
	if err != nil {
		return nil, err
	}
	oc := &oracleChain{nfs: nfs}
	for _, nf := range nfs {
		switch v := nf.(type) {
		case *maglev.Maglev:
			oc.lb = v
		case *monitor.Monitor:
			oc.mon = v
		case *snort.Snort:
			oc.ids = v
		}
	}
	return oc, nil
}

// runOracleSchedule replays one fault schedule through both engines.
func runOracleSchedule(cfg OracleConfig, sched int, seed int64, chain int, rates map[fault.Kind]float64, res *OracleResult) error {
	tr, err := trace.Generate(trace.Config{
		Seed: seed, Flows: cfg.Flows,
		AlertFraction: 0.15, LogFraction: 0.15,
		Interleave: true,
	})
	if err != nil {
		return err
	}
	ref, err := buildOracleChain(chain)
	if err != nil {
		return err
	}
	fast, err := buildOracleChain(chain)
	if err != nil {
		return err
	}
	refEng, err := core.NewEngine(ref.nfs, core.BaselineOptions())
	if err != nil {
		return err
	}
	inj := fault.New(fault.Config{Seed: seed, Rates: rates})
	fastOpts := core.DefaultOptions()
	fastOpts.Faults = inj
	fastEng, err := core.NewEngine(fast.nfs, fastOpts)
	if err != nil {
		return err
	}

	refPkts, fastPkts := tr.Packets(), tr.Packets()
	diverge := func(pkt int, format string, args ...any) {
		res.Divergences = append(res.Divergences, OracleDivergence{
			Schedule: sched, Seed: seed, Packet: pkt,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// Backend flaps are pool changes, not SpeedyBox faults: both
	// engines' Maglev instances see the identical schedule, and the
	// reference's assignment logic re-picks for unhealthy pins exactly
	// as the fast engine's events reroute.
	var plan []fault.Flap
	if ref.lb != nil {
		plan = inj.FlapPlan(len(refPkts), 3)
	}
	next := 0

	var cb *core.Batch
	if cfg.Batch > 1 {
		cb = core.NewBatch(cfg.Batch)
	}

	i := 0
scan:
	for i < len(refPkts) {
		for next < len(plan) && plan[next].At <= i {
			f := plan[next]
			next++
			if f.Restore {
				_ = ref.lb.RestoreBackend(f.Backend)
				_ = fast.lb.RestoreBackend(f.Backend)
			} else {
				_ = ref.lb.FailBackend(f.Backend)
				_ = fast.lb.FailBackend(f.Backend)
			}
		}
		// One packet, or one vector clipped at the next flap index: the
		// flap is environmental and must interleave with the packet
		// stream identically in both engines.
		end := i + 1
		if cb != nil {
			end = i + cfg.Batch
			if end > len(refPkts) {
				end = len(refPkts)
			}
			if next < len(plan) && plan[next].At < end {
				end = plan[next].At
			}
		}
		var fastResults []*core.PacketResult
		if cb != nil {
			var err error
			fastResults, err = fastEng.ProcessBatch(fastPkts[i:end], cb)
			if err != nil {
				return fmt.Errorf("packet %d: fast batch err %v", i, err)
			}
		}
		for k := i; k < end; k++ {
			refRes, refErr := refEng.ProcessPacket(refPkts[k])
			var fastRes *core.PacketResult
			var fastErr error
			if cb != nil {
				fastRes = fastResults[k-i]
			} else {
				fastRes, fastErr = fastEng.ProcessPacket(fastPkts[k])
			}
			if refErr != nil || fastErr != nil {
				return fmt.Errorf("packet %d: ref err %v, fast err %v", k, refErr, fastErr)
			}
			res.Packets++
			if refRes.Verdict != fastRes.Verdict {
				diverge(k, "verdict: ref %v, fast %v", refRes.Verdict, fastRes.Verdict)
				break scan
			}
			if refPkts[k].Dropped() != fastPkts[k].Dropped() {
				diverge(k, "dropped: ref %v, fast %v", refPkts[k].Dropped(), fastPkts[k].Dropped())
				break scan
			}
			if !refPkts[k].Dropped() && !bytes.Equal(refPkts[k].Data(), fastPkts[k].Data()) {
				diverge(k, "rewritten bytes differ (%d vs %d bytes)",
					len(refPkts[k].Data()), len(fastPkts[k].Data()))
				break scan
			}
			if cfg.TamperRule != nil {
				// In batch mode the vector has already run; tampering
				// still poisons every later vector of the flow.
				if r, ok := fastEng.Global().Lookup(fastRes.FID); ok {
					broken := *r
					cfg.TamperRule(&broken)
					fastEng.Global().Install(&broken)
				}
			}
		}
		i = end
	}

	// End-of-trace NF-observable state: the consolidated fast path
	// must have driven every state function exactly as the chain did.
	if ref.mon != nil {
		if rc, fc := ref.mon.Totals(), fast.mon.Totals(); rc != fc {
			diverge(-1, "monitor counters: ref %+v, fast %+v", rc, fc)
		}
	}
	if ref.ids != nil {
		rl, fl := ref.ids.Logs(), fast.ids.Logs()
		if len(rl) != len(fl) {
			diverge(-1, "snort logs: ref %d entries, fast %d", len(rl), len(fl))
		} else {
			for j := range rl {
				if rl[j].RuleID != fl[j].RuleID || rl[j].Type != fl[j].Type {
					diverge(-1, "snort log %d: ref (%d,%v), fast (%d,%v)",
						j, rl[j].RuleID, rl[j].Type, fl[j].RuleID, fl[j].Type)
					break
				}
			}
		}
	}

	st := fastEng.Stats()
	res.Injected += inj.InjectedTotal()
	res.Fallbacks += st.SlowPathFallbacks
	res.Degraded += st.DegradedPackets
	res.Recoveries += st.FaultRecoveries
	return nil
}
