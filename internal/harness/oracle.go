package harness

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/fault"
	"github.com/fastpathnfv/speedybox/internal/mat"
	"github.com/fastpathnfv/speedybox/internal/nf/gateway"
	"github.com/fastpathnfv/speedybox/internal/nf/ipfilter"
	"github.com/fastpathnfv/speedybox/internal/nf/maglev"
	"github.com/fastpathnfv/speedybox/internal/nf/monitor"
	"github.com/fastpathnfv/speedybox/internal/nf/snort"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/trace"
	"github.com/fastpathnfv/speedybox/internal/wal"
)

// The differential equivalence oracle generalizes the paper's three
// hand-written §VII-C case studies into a property checked under
// thousands of randomized fault schedules: every trace runs twice —
// through a pure slow-path reference engine (the unmodified chain,
// which is correct by definition) and through full SpeedyBox with a
// seeded fault injector attacking its control plane — and every packet
// must leave both engines with the identical verdict, identical drop
// state and identical rewritten bytes, with identical NF-observable
// side effects (Monitor counters, Snort logs) at the end of the trace.
// Backend flaps are environmental (the pool genuinely changed), so the
// injector's deterministic FlapPlan is applied to both engines at the
// same packet indices.

// OracleConfig configures a differential-oracle run.
type OracleConfig struct {
	// Seed derives every schedule's trace and fault seeds; equal seeds
	// reproduce every divergence exactly.
	Seed int64
	// Schedules is how many randomized fault schedules to run
	// (default 200; CI runs 200, the acceptance bar is 1000).
	Schedules int
	// Flows is the per-schedule trace size (default 24).
	Flows int
	// Chain picks the service chain: 1 or 2 (§VII-B3); 0 alternates
	// per schedule.
	Chain int
	// Batch > 1 drives the fast engine through ProcessBatch in vectors
	// of that size (the reference engine stays scalar — its correctness
	// is definitional), proving the batched data path bit-identical to
	// per-packet execution under the same fault schedules. Vectors are
	// clipped at backend-flap indices so every packet of a batch
	// observes the same pool state as its reference twin.
	Batch int
	// Rates overrides the per-kind injection rates; nil selects a
	// uniform moderate-chaos default across every fault kind.
	Rates map[fault.Kind]float64
	// TamperRule, when set, corrupts the flow's consolidated rule
	// after each fast-engine packet. Test-only: it exists to prove the
	// oracle has teeth — a deliberately broken consolidation must be
	// caught as a divergence.
	TamperRule func(*mat.GlobalRule)
	// Reconfigs is how many live chain reconfigurations to apply per
	// schedule, at deterministic mid-trace offsets derived from the
	// schedule seed. Each plan (insert a gateway — a semantically
	// visible MAC rewrite —, insert a pass-all filter, remove a
	// previous insertion, reorder) is applied to the fast engine and to
	// the slow-path reference at the same packet index; a fault-aborted
	// plan is skipped on both, which is exactly the rollback contract
	// under test. 0 disables reconfiguration.
	Reconfigs int
	// TamperReconfig, when set, runs after each successful fast-engine
	// reconfiguration with a copy of the rules installed before it.
	// Test-only teeth: re-installing those pre-reconfiguration rules
	// under the new epoch models a broken invalidation and must be
	// caught as a divergence.
	TamperReconfig func(eng *core.Engine, pre []*mat.GlobalRule)
	// Topo switches to the multi-chain topology oracle: each schedule
	// runs a fixed three-chain, three-tenant topology (shared monitor,
	// per-chain policies, tight tenant quotas) against per-flow pure
	// slow-path references — the same lockstep verdict/drop/byte
	// comparison, plus shared-NF observables, composed with Batch,
	// Reconfigs and Crashes.
	Topo bool
	// TamperRoute, when set with Topo, overrides the fast topology's
	// classifier (receiving each packet and the honest chain index).
	// Test-only teeth: routing a flow down the wrong chain must be
	// caught as a divergence.
	TamperRoute func(pkt *packet.Packet, chain int) int
	// Cluster switches to the multi-instance cluster oracle: each
	// schedule drives the identical trace through a static single
	// engine (the reference) and through a cluster that scales
	// 1→2→4→3 at seeded mid-trace packet indices, live-migrating
	// every reassigned flow at each step. Per-packet verdicts, drop
	// decisions and rewritten bytes must stay bit-identical across
	// every rebalance — zero drops during migration — and the
	// end-of-trace NF observables must match. Composes with Batch
	// (the cluster runs its batched run-splitting path), Reconfigs
	// (applied cluster-wide at a common packet boundary) and Crashes
	// (random instances are killed and restored from checkpoint+WAL
	// mid-trace). Injected fault.KindMigrationAbort decisions roll
	// whole rebalances back, which must also be verdict-invisible.
	Cluster bool
	// TamperMigration, when set with Cluster, corrupts each decoded
	// migration record before the new owner adopts it. Test-only
	// teeth: a migration that delivers the wrong rule must be caught
	// as a divergence.
	TamperMigration func(*wal.MigrationRecord)
	// Crashes > 0 kills and restores the fast engine at up to that many
	// (capped at 4) seeded packet indices per schedule: a
	// crash-consistent checkpoint is taken at the kill point, the engine
	// and every NF instance are discarded, a fresh chain is rebuilt
	// (replaying any surviving reconfigurations), and Engine.Restore
	// rehydrates it from the encoded checkpoint plus the durable WAL
	// prefix — exactly what a process restart would find on disk. The
	// reference engine runs uninterrupted, so any state the restore
	// loses or invents shows up as a divergence.
	Crashes int
}

// OracleDivergence pinpoints one fast/slow-path disagreement.
type OracleDivergence struct {
	// Schedule and Seed identify the failing schedule (re-run with
	// this seed to reproduce).
	Schedule int
	Seed     int64
	// Packet is the trace index of the diverging packet, -1 for
	// end-of-trace state divergences.
	Packet int
	// Detail describes what disagreed.
	Detail string
}

// OracleResult aggregates a differential-oracle run.
type OracleResult struct {
	Schedules int
	Packets   int
	// Injected totals the faults fired across all schedules.
	Injected uint64
	// Fallbacks, Degraded and Recoveries total the fast engines'
	// degradation counters, proving the graceful-degradation machinery
	// actually engaged while equivalence held.
	Fallbacks  uint64
	Degraded   uint64
	Recoveries uint64
	// Reconfigs and ReconfigAborts total the live chain changes applied
	// and the fault-aborted (cleanly rolled back) ones.
	Reconfigs      uint64
	ReconfigAborts uint64
	// CrashRestores totals the fast-engine kill/restore cycles survived.
	CrashRestores uint64
	// Migrations, MigrationAborts and Rebalances total the cluster
	// oracle's live flow moves, rolled-back rebalances and completed
	// rebalances (zero outside Cluster mode).
	Migrations      uint64
	MigrationAborts uint64
	Rebalances      uint64
	// Divergences lists every disagreement (empty on a pass; capped —
	// a broken engine would otherwise produce one per packet).
	Divergences []OracleDivergence
}

// maxDivergences caps how many divergences a run collects before
// aborting early.
const maxDivergences = 16

// Passed reports whether every packet of every schedule agreed.
func (r *OracleResult) Passed() bool {
	return r.Schedules > 0 && len(r.Divergences) == 0
}

// Format renders the oracle outcome.
func (r *OracleResult) Format() string {
	t := &tableWriter{}
	t.title("Differential fast/slow-path equivalence oracle (randomized fault schedules)")
	t.row("schedules", "packets", "faults injected", "fallbacks", "degraded pkts", "recoveries", "reconfigs", "aborted", "crashes", "migrations", "mig aborts", "divergences", "result")
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	t.row(fmt.Sprintf("%d", r.Schedules), fmt.Sprintf("%d", r.Packets),
		fmt.Sprintf("%d", r.Injected), fmt.Sprintf("%d", r.Fallbacks),
		fmt.Sprintf("%d", r.Degraded), fmt.Sprintf("%d", r.Recoveries),
		fmt.Sprintf("%d", r.Reconfigs), fmt.Sprintf("%d", r.ReconfigAborts),
		fmt.Sprintf("%d", r.CrashRestores),
		fmt.Sprintf("%d", r.Migrations), fmt.Sprintf("%d", r.MigrationAborts),
		fmt.Sprintf("%d", len(r.Divergences)), status)
	out := t.String()
	for _, d := range r.Divergences {
		out += fmt.Sprintf("  divergence: schedule %d (seed %d) packet %d: %s\n",
			d.Schedule, d.Seed, d.Packet, d.Detail)
	}
	return out
}

// RunOracle executes the differential equivalence oracle.
func RunOracle(cfg OracleConfig) (*OracleResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Schedules == 0 {
		cfg.Schedules = 200
	}
	if cfg.Flows == 0 {
		cfg.Flows = 24
	}
	rates := cfg.Rates
	if rates == nil {
		rates = fault.UniformRates(0.08)
	}
	res := &OracleResult{}
	for s := 0; s < cfg.Schedules; s++ {
		seed := cfg.Seed + int64(s)*7919
		chain := cfg.Chain
		if chain == 0 {
			chain = 1 + s%2
			if cfg.Cluster {
				// Cycle in the stateless chain so rule-carrying
				// migration runs alongside the demotion path the
				// monitor-bearing chains force.
				chain = 1 + s%3
			}
		}
		var err error
		switch {
		case cfg.Topo:
			err = runTopoSchedule(cfg, s, seed, rates, res)
		case cfg.Cluster:
			err = runClusterSchedule(cfg, s, seed, chain, rates, res)
		default:
			err = runOracleSchedule(cfg, s, seed, chain, rates, res)
		}
		if err != nil {
			return nil, fmt.Errorf("harness: oracle schedule %d (seed %d): %w", s, seed, err)
		}
		res.Schedules++
		if len(res.Divergences) >= maxDivergences {
			break
		}
	}
	return res, nil
}

// oracleChain is one engine's chain with its observable NFs picked out.
type oracleChain struct {
	nfs []core.NF
	lb  *maglev.Maglev
	mon *monitor.Monitor
	ids *snort.Snort
}

func buildOracleChain(chain int) (*oracleChain, error) {
	var (
		nfs []core.NF
		err error
	)
	switch chain {
	case 1:
		nfs, err = Chain1()
	case 3:
		nfs, err = ChainStateless()
	default:
		nfs, err = Chain2()
	}
	if err != nil {
		return nil, err
	}
	oc := &oracleChain{nfs: nfs}
	for _, nf := range nfs {
		switch v := nf.(type) {
		case *maglev.Maglev:
			oc.lb = v
		case *monitor.Monitor:
			oc.mon = v
		case *snort.Snort:
			oc.ids = v
		}
	}
	return oc, nil
}

// reconfigEvent is one scheduled live chain change. mk builds a fresh
// plan on every call — a new NF instance each time — so the reference
// and the fast engine never share an inserted NF's state.
type reconfigEvent struct {
	at int
	mk func() (core.ChainPlan, error)
}

// buildReconfigEvents derives n deterministic chain changes from the
// schedule seed, at sorted offsets inside the middle 80% of the trace.
// Operations cycle through inserting a gateway (a semantically visible
// MAC rewrite), inserting a pass-all filter, removing the oldest
// surviving insertion (or inserting an extra monitor when none
// remains), and reordering a random NF. Plan positions track the chain
// as if every plan lands; when an earlier plan is fault-aborted a later
// one may be rejected by validation — on both engines identically,
// which the schedule runner treats as a shared no-op.
func buildReconfigEvents(seed int64, n, pkts int, chain []string) []reconfigEvent {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	names := append([]string(nil), chain...)
	var inserted []string
	lo, hi := pkts/10, pkts*9/10
	if hi <= lo {
		hi = lo + 1
	}
	offsets := make([]int, n)
	for k := range offsets {
		offsets[k] = lo + rng.Intn(hi-lo)
	}
	sort.Ints(offsets)
	events := make([]reconfigEvent, 0, n)
	for k := 0; k < n; k++ {
		at := offsets[k]
		switch k % 4 {
		case 0:
			k, name := k, fmt.Sprintf("gw%d", k)
			pos := rng.Intn(len(names) + 1)
			events = append(events, reconfigEvent{at: at, mk: func() (core.ChainPlan, error) {
				nf, err := gateway.New(gateway.Config{
					Name:       name,
					NextHopMAC: [6]byte{2, 0, 0, 0, 0, byte(k + 1)},
				})
				if err != nil {
					return core.ChainPlan{}, err
				}
				return core.ChainPlan{Op: core.OpInsert, Pos: pos, NF: nf}, nil
			}})
			names = append(names[:pos], append([]string{name}, names[pos:]...)...)
			inserted = append(inserted, name)
		case 1:
			name := fmt.Sprintf("flt%d", k)
			pos := rng.Intn(len(names) + 1)
			events = append(events, reconfigEvent{at: at, mk: func() (core.ChainPlan, error) {
				nf, err := ipfilter.New(ipfilter.Config{
					Name:  name,
					Rules: ipfilter.PadRules(nil, 50),
				})
				if err != nil {
					return core.ChainPlan{}, err
				}
				return core.ChainPlan{Op: core.OpInsert, Pos: pos, NF: nf}, nil
			}})
			names = append(names[:pos], append([]string{name}, names[pos:]...)...)
			inserted = append(inserted, name)
		case 2:
			if len(inserted) > 0 {
				name := inserted[0]
				inserted = inserted[1:]
				events = append(events, reconfigEvent{at: at, mk: func() (core.ChainPlan, error) {
					return core.ChainPlan{Op: core.OpRemove, Name: name}, nil
				}})
				kept := names[:0:0]
				for _, n := range names {
					if n != name {
						kept = append(kept, n)
					}
				}
				names = kept
			} else {
				name := fmt.Sprintf("mon%d", k)
				pos := rng.Intn(len(names) + 1)
				events = append(events, reconfigEvent{at: at, mk: func() (core.ChainPlan, error) {
					nf, err := monitor.New(name)
					if err != nil {
						return core.ChainPlan{}, err
					}
					return core.ChainPlan{Op: core.OpInsert, Pos: pos, NF: nf}, nil
				}})
				names = append(names[:pos], append([]string{name}, names[pos:]...)...)
				inserted = append(inserted, name)
			}
		default:
			name := names[rng.Intn(len(names))]
			pos := rng.Intn(len(names))
			events = append(events, reconfigEvent{at: at, mk: func() (core.ChainPlan, error) {
				return core.ChainPlan{Op: core.OpReorder, Name: name, Pos: pos}, nil
			}})
			kept := names[:0:0]
			for _, n := range names {
				if n != name {
					kept = append(kept, n)
				}
			}
			names = append(kept[:pos], append([]string{name}, kept[pos:]...)...)
		}
	}
	return events
}

// runOracleSchedule replays one fault schedule through both engines.
func runOracleSchedule(cfg OracleConfig, sched int, seed int64, chain int, rates map[fault.Kind]float64, res *OracleResult) error {
	tr, err := trace.Generate(trace.Config{
		Seed: seed, Flows: cfg.Flows,
		AlertFraction: 0.15, LogFraction: 0.15,
		Interleave: true,
	})
	if err != nil {
		return err
	}
	ref, err := buildOracleChain(chain)
	if err != nil {
		return err
	}
	fast, err := buildOracleChain(chain)
	if err != nil {
		return err
	}
	refEng, err := core.NewEngine(ref.nfs, core.BaselineOptions())
	if err != nil {
		return err
	}
	inj := fault.New(fault.Config{Seed: seed, Rates: rates})
	fastOpts := core.DefaultOptions()
	fastOpts.Faults = inj
	fastEng, err := core.NewEngine(fast.nfs, fastOpts)
	if err != nil {
		return err
	}

	refPkts, fastPkts := tr.Packets(), tr.Packets()
	diverge := func(pkt int, format string, args ...any) {
		res.Divergences = append(res.Divergences, OracleDivergence{
			Schedule: sched, Seed: seed, Packet: pkt,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// Backend flaps are pool changes, not SpeedyBox faults: both
	// engines' Maglev instances see the identical schedule, and the
	// reference's assignment logic re-picks for unhealthy pins exactly
	// as the fast engine's events reroute.
	var plan []fault.Flap
	if ref.lb != nil {
		plan = inj.FlapPlan(len(refPkts), 3)
	}
	next := 0

	var crashes []fault.Crash
	if cfg.Crashes > 0 {
		// CrashPlan scales its count with the KindCrashRestore rate
		// (count = int(rate*4)+1, capped at 4), so (c-1)/4 plus a nudge
		// yields exactly min(c, 4) planned crashes.
		inj.SetRate(fault.KindCrashRestore, float64(cfg.Crashes-1)/4+0.05)
		crashes = inj.CrashPlan(len(refPkts))
		fastEng.AttachWAL(wal.NewWriter(wal.Options{}))
	}
	nextCrash := 0

	var reEvents []reconfigEvent
	if cfg.Reconfigs > 0 {
		chainNames := make([]string, len(ref.nfs))
		for i, nf := range ref.nfs {
			chainNames[i] = nf.Name()
		}
		reEvents = buildReconfigEvents(seed, cfg.Reconfigs, len(refPkts), chainNames)
	}
	nextRe := 0
	var appliedRe []reconfigEvent
	applyReconfig := func(ev reconfigEvent) error {
		var pre []*mat.GlobalRule
		if cfg.TamperReconfig != nil {
			fastEng.Global().ForEach(func(r *mat.GlobalRule) {
				cp := *r
				pre = append(pre, &cp)
			})
		}
		fastPlan, err := ev.mk()
		if err != nil {
			return err
		}
		if ferr := fastEng.Reconfigure(fastPlan); ferr != nil {
			// An aborted (or, after an earlier abort, validation-rejected)
			// plan left the fast chain untouched — that is the rollback
			// contract — so the reference skips it too and the engines
			// stay in lockstep.
			if errors.Is(ferr, core.ErrReconfigAborted) {
				res.ReconfigAborts++
			}
			return nil
		}
		refPlan, err := ev.mk()
		if err != nil {
			return err
		}
		if rerr := refEng.Reconfigure(refPlan); rerr != nil {
			return fmt.Errorf("reference reconfigure (%s): %v", refPlan, rerr)
		}
		res.Reconfigs++
		appliedRe = append(appliedRe, ev)
		if cfg.TamperReconfig != nil {
			cfg.TamperReconfig(fastEng, pre)
		}
		return nil
	}

	// crashRestore kills the fast engine and rehydrates a fresh one from
	// exactly what a process restart would find on disk: the encoded
	// crash-consistent checkpoint plus the durable (synced) WAL prefix.
	// The reference engine runs on uninterrupted, so any state the
	// restore loses or invents surfaces as a divergence downstream.
	crashRestore := func() error {
		cp, err := fastEng.Checkpoint()
		if err != nil {
			return fmt.Errorf("crash checkpoint: %w", err)
		}
		blob := cp.Encode()
		durable := append([]byte(nil), fastEng.WAL().DurableBytes()...)

		// The old engine's degradation counters die with it; bank them.
		st := fastEng.Stats()
		res.Fallbacks += st.SlowPathFallbacks
		res.Degraded += st.DegradedPackets
		res.Recoveries += st.FaultRecoveries

		nfast, err := buildOracleChain(chain)
		if err != nil {
			return err
		}
		neweng, err := core.NewEngine(nfast.nfs, fastOpts)
		if err != nil {
			return err
		}
		// Rebuild the chain composition the checkpoint was taken under:
		// replay every reconfiguration that survived, with abort
		// injection off — these plans already committed before the crash.
		abortRate := inj.Rate(fault.KindReconfigAbort)
		inj.SetRate(fault.KindReconfigAbort, 0)
		for _, ev := range appliedRe {
			plan, err := ev.mk()
			if err != nil {
				return err
			}
			if rerr := neweng.Reconfigure(plan); rerr != nil {
				return fmt.Errorf("crash rebuild reconfigure (%s): %v", plan, rerr)
			}
		}
		inj.SetRate(fault.KindReconfigAbort, abortRate)

		rcp, err := wal.DecodeCheckpoint(blob)
		if err != nil {
			return fmt.Errorf("crash checkpoint decode: %w", err)
		}
		if err := neweng.Restore(rcp, durable); err != nil {
			return fmt.Errorf("crash restore: %w", err)
		}
		neweng.AttachWAL(wal.NewWriter(wal.Options{}))
		fast, fastEng = nfast, neweng
		res.CrashRestores++
		return nil
	}

	var cb *core.Batch
	if cfg.Batch > 1 {
		cb = core.NewBatch(cfg.Batch)
	}

	i := 0
scan:
	for i < len(refPkts) {
		for nextCrash < len(crashes) && crashes[nextCrash].At <= i {
			nextCrash++
			if err := crashRestore(); err != nil {
				return fmt.Errorf("packet %d: %w", i, err)
			}
		}
		for next < len(plan) && plan[next].At <= i {
			f := plan[next]
			next++
			if f.Restore {
				_ = ref.lb.RestoreBackend(f.Backend)
				_ = fast.lb.RestoreBackend(f.Backend)
			} else {
				_ = ref.lb.FailBackend(f.Backend)
				_ = fast.lb.FailBackend(f.Backend)
			}
		}
		for nextRe < len(reEvents) && reEvents[nextRe].at <= i {
			ev := reEvents[nextRe]
			nextRe++
			if err := applyReconfig(ev); err != nil {
				return err
			}
		}
		// One packet, or one vector clipped at the next flap or
		// reconfiguration index: both are environmental transitions and
		// must interleave with the packet stream identically in both
		// engines.
		end := i + 1
		if cb != nil {
			end = i + cfg.Batch
			if end > len(refPkts) {
				end = len(refPkts)
			}
			if next < len(plan) && plan[next].At < end {
				end = plan[next].At
			}
			if nextRe < len(reEvents) && reEvents[nextRe].at < end {
				end = reEvents[nextRe].at
			}
			if nextCrash < len(crashes) && crashes[nextCrash].At < end {
				end = crashes[nextCrash].At
			}
		}
		var fastResults []*core.PacketResult
		if cb != nil {
			var err error
			fastResults, err = fastEng.ProcessBatch(fastPkts[i:end], cb)
			if err != nil {
				return fmt.Errorf("packet %d: fast batch err %v", i, err)
			}
		}
		for k := i; k < end; k++ {
			refRes, refErr := refEng.ProcessPacket(refPkts[k])
			var fastRes *core.PacketResult
			var fastErr error
			if cb != nil {
				fastRes = fastResults[k-i]
			} else {
				fastRes, fastErr = fastEng.ProcessPacket(fastPkts[k])
			}
			if refErr != nil || fastErr != nil {
				return fmt.Errorf("packet %d: ref err %v, fast err %v", k, refErr, fastErr)
			}
			res.Packets++
			if refRes.Verdict != fastRes.Verdict {
				diverge(k, "verdict: ref %v, fast %v", refRes.Verdict, fastRes.Verdict)
				break scan
			}
			if refPkts[k].Dropped() != fastPkts[k].Dropped() {
				diverge(k, "dropped: ref %v, fast %v", refPkts[k].Dropped(), fastPkts[k].Dropped())
				break scan
			}
			if !refPkts[k].Dropped() && !bytes.Equal(refPkts[k].Data(), fastPkts[k].Data()) {
				diverge(k, "rewritten bytes differ (%d vs %d bytes)",
					len(refPkts[k].Data()), len(fastPkts[k].Data()))
				break scan
			}
			if cfg.TamperRule != nil {
				// In batch mode the vector has already run; tampering
				// still poisons every later vector of the flow.
				if r, ok := fastEng.Global().Lookup(fastRes.FID); ok {
					broken := *r
					cfg.TamperRule(&broken)
					// Recompile so the tamper reaches the compiled
					// action program the data path executes — exactly
					// as a genuinely broken Consolidate would.
					broken.Compile()
					fastEng.Global().Install(&broken)
				}
			}
		}
		i = end
	}

	// End-of-trace NF-observable state: the consolidated fast path
	// must have driven every state function exactly as the chain did.
	if ref.mon != nil {
		if rc, fc := ref.mon.Totals(), fast.mon.Totals(); rc != fc {
			diverge(-1, "monitor counters: ref %+v, fast %+v", rc, fc)
		}
	}
	if ref.ids != nil {
		rl, fl := ref.ids.Logs(), fast.ids.Logs()
		if len(rl) != len(fl) {
			diverge(-1, "snort logs: ref %d entries, fast %d", len(rl), len(fl))
		} else {
			for j := range rl {
				if rl[j].RuleID != fl[j].RuleID || rl[j].Type != fl[j].Type {
					diverge(-1, "snort log %d: ref (%d,%v), fast (%d,%v)",
						j, rl[j].RuleID, rl[j].Type, fl[j].RuleID, fl[j].Type)
					break
				}
			}
		}
	}

	st := fastEng.Stats()
	res.Injected += inj.InjectedTotal()
	res.Fallbacks += st.SlowPathFallbacks
	res.Degraded += st.DegradedPackets
	res.Recoveries += st.FaultRecoveries
	return nil
}
