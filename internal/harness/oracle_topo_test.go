package harness

import (
	"testing"

	"github.com/fastpathnfv/speedybox/internal/fault"
	"github.com/fastpathnfv/speedybox/internal/packet"
)

// TestTopoOracleEquivalence runs the multi-chain topology oracle: three
// chains with different semantics sharing a monitor, three tenants with
// tight quotas, under the usual randomized fault chaos. Every packet
// must agree with its per-flow pure slow-path reference, and both the
// fault machinery and the degradation machinery must demonstrably
// engage.
func TestTopoOracleEquivalence(t *testing.T) {
	schedules := 40
	if testing.Short() {
		schedules = 8
	}
	res, err := RunOracle(OracleConfig{Seed: 1, Schedules: schedules, Topo: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("topo oracle failed:\n%s", res.Format())
	}
	if res.Injected == 0 {
		t.Error("no faults injected; the run was vacuous")
	}
	if res.Fallbacks == 0 {
		t.Error("no slow-path fallbacks; degradation never engaged")
	}
}

// TestTopoOracleComposed composes the topology oracle with everything
// at once: live reconfigurations on a rotating target chain, whole-
// topology crash/restore cycles, and batched fast-path execution with
// vectors clipped at chain boundaries and event indices.
func TestTopoOracleComposed(t *testing.T) {
	schedules := 20
	if testing.Short() {
		schedules = 4
	}
	for _, batch := range []int{0, 16} {
		res, err := RunOracle(OracleConfig{
			Seed: 1, Schedules: schedules, Topo: true,
			Reconfigs: 3, Crashes: 2, Batch: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed() {
			t.Fatalf("composed topo oracle (batch=%d) failed:\n%s", batch, res.Format())
		}
		if res.Reconfigs == 0 || res.CrashRestores == 0 {
			t.Errorf("batch=%d: vacuous run: reconfigs=%d crashes=%d",
				batch, res.Reconfigs, res.CrashRestores)
		}
	}
}

// TestTopoOracleCatchesMisclassification proves the topology oracle has
// teeth: routing the VoIP chain's flows down the web chain (which lacks
// the gateway's MAC rewrite) must surface as a byte-level divergence.
// A classifier bug that silently sends flows to the wrong chain is
// exactly the failure mode this oracle exists to catch.
func TestTopoOracleCatchesMisclassification(t *testing.T) {
	res, err := RunOracle(OracleConfig{
		Seed: 1, Schedules: 4, Topo: true,
		Rates: fault.UniformRates(0), // isolate the tamper
		TamperRoute: func(pkt *packet.Packet, chain int) int {
			if chain == 1 { // voip -> web
				return 0
			}
			return chain
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("topo oracle passed a deliberately mis-classified flow")
	}
}

// TestTopoOracleDeterministic re-runs the same seed and expects
// identical aggregate behaviour across the whole topology.
func TestTopoOracleDeterministic(t *testing.T) {
	run := func() *OracleResult {
		res, err := RunOracle(OracleConfig{Seed: 7, Schedules: 6, Topo: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Packets != b.Packets || a.Injected != b.Injected ||
		a.Fallbacks != b.Fallbacks || a.Recoveries != b.Recoveries {
		t.Errorf("equal seeds diverged: %+v vs %+v", a, b)
	}
}
