package harness

import (
	"testing"

	"github.com/fastpathnfv/speedybox/internal/fault"
	"github.com/fastpathnfv/speedybox/internal/wal"
)

// TestOracleClusterEquivalence is the CI-sized cluster differential
// run: every schedule scales the cluster 1→2→4→3 mid-trace, live-
// migrating flows at each step, and the per-packet stream must stay
// bit-identical to a static single engine — zero drops, zero verdict
// or byte divergence across every rebalance. The run is vacuous
// unless flows actually moved and rebalances actually completed.
func TestOracleClusterEquivalence(t *testing.T) {
	schedules := 60
	if testing.Short() {
		schedules = 10
	}
	res, err := RunOracle(OracleConfig{Seed: 1, Schedules: schedules, Cluster: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("cluster oracle failed:\n%s", res.Format())
	}
	if res.Migrations == 0 {
		t.Error("no flows migrated; the run was vacuous")
	}
	if res.Rebalances == 0 {
		t.Error("no rebalances completed; scaling never happened")
	}
	if res.Injected == 0 || res.Fallbacks == 0 {
		t.Error("no faults or no fallbacks; degradation never engaged under scaling")
	}
}

// TestOracleClusterBatchEquivalence drives the cluster through its
// batched run-splitting path in 32-packet vectors: outcomes — packets
// compared, faults injected, degradation counters, flows migrated —
// must be identical to the scalar cluster run under the same seeds.
func TestOracleClusterBatchEquivalence(t *testing.T) {
	schedules := 40
	if testing.Short() {
		schedules = 8
	}
	batched, err := RunOracle(OracleConfig{Seed: 1, Schedules: schedules, Cluster: true, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !batched.Passed() {
		t.Fatalf("batched cluster oracle failed:\n%s", batched.Format())
	}
	scalar, err := RunOracle(OracleConfig{Seed: 1, Schedules: schedules, Cluster: true})
	if err != nil {
		t.Fatal(err)
	}
	if batched.Packets != scalar.Packets || batched.Injected != scalar.Injected ||
		batched.Fallbacks != scalar.Fallbacks || batched.Degraded != scalar.Degraded ||
		batched.Migrations != scalar.Migrations || batched.Rebalances != scalar.Rebalances {
		t.Errorf("batched and scalar cluster runs disagree:\nbatched: %+v\nscalar:  %+v",
			batched, scalar)
	}
}

// TestOracleClusterComposed layers every environmental event the
// oracle knows onto the scaling cluster at once: batched vectors,
// cluster-wide live reconfigurations and instance crash-restores, all
// interleaved with rebalances on the same trace.
func TestOracleClusterComposed(t *testing.T) {
	schedules := 30
	if testing.Short() {
		schedules = 6
	}
	res, err := RunOracle(OracleConfig{
		Seed: 1, Schedules: schedules, Cluster: true,
		Batch: 16, Reconfigs: 3, Crashes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("composed cluster oracle failed:\n%s", res.Format())
	}
	if res.Migrations == 0 || res.Reconfigs == 0 || res.CrashRestores == 0 {
		t.Errorf("vacuous composition: %d migrations, %d reconfigs, %d crashes",
			res.Migrations, res.Reconfigs, res.CrashRestores)
	}
}

// TestOracleClusterAbortRollback turns migration aborts up so high
// that most rebalances roll back mid-migration, and demands the
// packet stream cannot tell: an aborted rebalance must leave every
// flow on its old owner with its state bit-intact.
func TestOracleClusterAbortRollback(t *testing.T) {
	rates := fault.UniformRates(0)
	rates[fault.KindMigrationAbort] = 0.25
	res, err := RunOracle(OracleConfig{
		Seed: 1, Schedules: 20, Cluster: true, Rates: rates,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("abort-heavy cluster oracle failed:\n%s", res.Format())
	}
	if res.MigrationAborts == 0 {
		t.Error("no rebalances aborted; the rollback path never ran")
	}
	if res.Rebalances == 0 {
		t.Error("every rebalance aborted; the commit path never ran")
	}
}

// TestOracleClusterCatchesTamperedMigration proves the cluster oracle
// has teeth: corrupting the rule inside a decoded migration record
// (flipping its verdict before the new owner adopts it) must surface
// as a divergence. The stateless chain is forced so migrations carry
// rules instead of demoting to re-record.
func TestOracleClusterCatchesTamperedMigration(t *testing.T) {
	withRule := 0
	res, err := RunOracle(OracleConfig{
		Seed: 1, Schedules: 3, Cluster: true, Chain: 3,
		Rates: fault.UniformRates(0),
		TamperMigration: func(r *wal.MigrationRecord) {
			if r.Rule != nil {
				withRule++
				r.Rule.Drop = !r.Rule.Drop
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if withRule == 0 {
		t.Fatal("no migration carried a rule; the tamper never fired")
	}
	if res.Passed() {
		t.Fatal("cluster oracle passed a deliberately corrupted migration")
	}
	d := res.Divergences[0]
	if d.Seed == 0 {
		t.Errorf("divergence not pinpointed: %+v", d)
	}
}

// TestOracleClusterStatelessChain runs the rule-carrying chain clean:
// migrations on the stateless chain move whole consolidated rules and
// must still be invisible to the packet stream.
func TestOracleClusterStatelessChain(t *testing.T) {
	res, err := RunOracle(OracleConfig{Seed: 7, Schedules: 10, Cluster: true, Chain: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("stateless-chain cluster oracle failed:\n%s", res.Format())
	}
	if res.Migrations == 0 {
		t.Error("no migrations on the stateless chain")
	}
}
