package harness

import (
	"strings"
	"testing"
)

// The harness tests assert the reproduced *shapes* of the paper's
// results: who wins, in which direction, and (loosely banded) by how
// much. Exact cycle counts are pinned down separately in
// EXPERIMENTS.md.

func cfg() Config { return Config{Seed: 1, Flows: 40} }

func TestFig4Shape(t *testing.T) {
	res, err := RunFig4(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 2 platforms x 3 chain lengths", len(res.Rows))
	}
	for _, row := range res.Rows {
		t.Run(row.Platform+"/"+string(rune('0'+row.NumHA)), func(t *testing.T) {
			// Initial packets cost much more than subsequent (ACL scans).
			if row.OriginalInit <= row.OriginalSub {
				t.Errorf("init (%f) not above sub (%f)", row.OriginalInit, row.OriginalSub)
			}
			// Recording makes SBox initial packets costlier than original.
			if row.SBoxInit <= row.OriginalInit {
				t.Errorf("SBox init (%f) not above original init (%f)", row.SBoxInit, row.OriginalInit)
			}
			switch row.NumHA {
			case 1:
				// Paper: SpeedyBox costs MORE with one header action.
				if row.SBoxSub <= row.OriginalSub {
					t.Errorf("1 HA: SBox sub (%f) should exceed original (%f)", row.SBoxSub, row.OriginalSub)
				}
			case 2:
				// Paper: 40.9% saving; accept 30-55%.
				if s := row.SubSaving(); s < 30 || s > 55 {
					t.Errorf("2 HA saving = %.1f%%, want ~40.9%%", s)
				}
			case 3:
				// Paper: 57.7% saving; accept 45-70%.
				if s := row.SubSaving(); s < 45 || s > 70 {
					t.Errorf("3 HA saving = %.1f%%, want ~57.7%%", s)
				}
			}
		})
	}
}

func TestFig4TheoreticalBound(t *testing.T) {
	// "Theoretically, this reduction can be as high as (N-1)/N": the
	// measured saving must stay below the bound.
	res, err := RunFig4(cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		bound := float64(row.NumHA-1) / float64(row.NumHA) * 100
		if s := row.SubSaving(); s > bound {
			t.Errorf("%s %d HA: saving %.1f%% exceeds theoretical bound %.1f%%",
				row.Platform, row.NumHA, s, bound)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := RunTable3(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Per-NF costs in the paper's 450-700 band.
		if len(row.PerNF) != 3 {
			t.Fatalf("%s: perNF = %v", row.Platform, row.PerNF)
		}
		for i, c := range row.PerNF {
			if c < 400 || c > 750 {
				t.Errorf("%s NF%d = %.0f cycles, outside Table III band", row.Platform, i+1, c)
			}
		}
		// Paper: ~65% aggregate saving; accept 55-75%.
		if s := row.Saving(); s < 55 || s > 75 {
			t.Errorf("%s early-drop saving = %.1f%%, want ~65%%", row.Platform, s)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := RunFig5(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// BESS rate with SBox at 3 SFs: paper reports 2.1x; accept >= 1.8x.
	if sp := res.BESSSpeedupAt3SF(); sp < 1.8 {
		t.Errorf("BESS 3-SF speedup = %.2fx, want >= 1.8x (paper 2.1x)", sp)
	}
	// BESS latency reduction at 3 SFs: paper 59%; accept >= 40%.
	if red := res.BESSLatencyReductionAt3SF(); red < 40 {
		t.Errorf("BESS 3-SF latency reduction = %.1f%%, want >= 40%% (paper 59%%)", red)
	}
	// Original BESS rate decreases with more SFs; ONVM's stays flat
	// (pipelined).
	b1, _ := res.point("BESS", false, 1)
	b3, _ := res.point("BESS", false, 3)
	if b3.RateMpps >= b1.RateMpps {
		t.Errorf("BESS original rate did not decrease: %.3f -> %.3f", b1.RateMpps, b3.RateMpps)
	}
	o1, _ := res.point("OpenNetVM", false, 1)
	o3, _ := res.point("OpenNetVM", false, 3)
	if o3.RateMpps < o1.RateMpps*0.85 {
		t.Errorf("ONVM original rate dropped: %.3f -> %.3f, should stay flat", o1.RateMpps, o3.RateMpps)
	}
	// Latency grows with SFs on the original path, stays near-flat
	// with SBox.
	bs1, _ := res.point("BESS", true, 1)
	bs3, _ := res.point("BESS", true, 3)
	if bs3.LatencyMicro > bs1.LatencyMicro*1.5 {
		t.Errorf("SBox latency grew %0.3f -> %0.3f across SFs", bs1.LatencyMicro, bs3.LatencyMicro)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Cycles per packet drop substantially on both platforms.
		if red := row.WorkReduction(); red < 15 {
			t.Errorf("%s cycle reduction = %.1f%%, want a substantial cut (paper ~46%%)", row.Platform, red)
		}
		switch row.Platform {
		case "BESS":
			// Paper: +32.1% rate.
			if imp := row.RateImprovement(); imp < 20 {
				t.Errorf("BESS rate improvement = %.1f%%, want >= 20%%", imp)
			}
		case "OpenNetVM":
			// Paper: rate roughly unchanged (pipelined already).
			if imp := row.RateImprovement(); imp < -10 || imp > 10 {
				t.Errorf("ONVM rate change = %.1f%%, want ~flat", imp)
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := RunFig7(cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Paper: 35.9% total reduction on BESS; accept >= 20%.
		if red := row.TotalReduction(); red < 20 {
			t.Errorf("%s total reduction = %.1f%%, want >= 20%%", row.Platform, red)
		}
		// Both optimizations contribute meaningfully (paper: roughly
		// half/half).
		ha, sf := row.Shares()
		if ha < 25 || sf < 25 {
			t.Errorf("%s shares HA=%.1f%% SF=%.1f%%; both should contribute", row.Platform, ha, sf)
		}
		// Ablations never beat the full system.
		if row.HAOnlyMicros < row.SBoxMicros-1e-9 {
			t.Errorf("%s HA-only (%.3f) beats full SBox (%.3f)", row.Platform, row.HAOnlyMicros, row.SBoxMicros)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := RunFig8(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.ONVMMaxLen != 5 {
		t.Errorf("ONVM max chain = %d, want the paper's 5", res.ONVMMaxLen)
	}
	// No ONVM points beyond length 5.
	for _, p := range res.Points {
		if p.Platform == "OpenNetVM" && p.ChainLen > 5 {
			t.Errorf("ONVM point at length %d", p.ChainLen)
		}
	}
	// BESS original latency grows roughly linearly; SBox stays
	// near-flat ("nearly irrelevant to the chain length").
	orig := res.Series("BESS", false)
	sbox := res.Series("BESS", true)
	if len(orig) != 9 || len(sbox) != 9 {
		t.Fatalf("BESS series lengths %d/%d, want 9", len(orig), len(sbox))
	}
	if orig[8].LatencyMicro < orig[0].LatencyMicro*2 {
		t.Errorf("BESS original latency %0.3f -> %0.3f did not grow with length", orig[0].LatencyMicro, orig[8].LatencyMicro)
	}
	if sbox[8].LatencyMicro > sbox[0].LatencyMicro*1.3 {
		t.Errorf("BESS SBox latency %0.3f -> %0.3f grew with length", sbox[0].LatencyMicro, sbox[8].LatencyMicro)
	}
	// At length 9, SBox wins big.
	if sbox[8].LatencyMicro > orig[8].LatencyMicro*0.5 {
		t.Errorf("at length 9 SBox latency %0.3f vs original %0.3f; want < half", sbox[8].LatencyMicro, orig[8].LatencyMicro)
	}
	// ONVM latency exceeds BESS at equal length (per-hop ring costs).
	onvmOrig := res.Series("OpenNetVM", false)
	for i, p := range onvmOrig {
		if i > 0 && p.LatencyMicro <= orig[i].LatencyMicro {
			t.Errorf("len %d: ONVM latency %0.3f <= BESS %0.3f", p.ChainLen, p.LatencyMicro, orig[i].LatencyMicro)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	for chain := 1; chain <= 2; chain++ {
		res, err := RunFig9(Config{Seed: 1, Flows: 80}, chain)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			// Paper: 34-41% median reduction; accept 20-55%.
			if red := row.P50Reduction(); red < 20 || red > 55 {
				t.Errorf("chain %d %s p50 reduction = %.1f%%, want 20-55%%", chain, row.Platform, red)
			}
			// Flow times land in the paper's 10-100µs axis range.
			if row.Original.P50 < 5 || row.Original.P50 > 200 {
				t.Errorf("chain %d %s p50 = %.1fµs, outside plausible range", chain, row.Platform, row.Original.P50)
			}
		}
	}
}

func TestFig9InvalidChain(t *testing.T) {
	if _, err := RunFig9(cfg(), 3); err == nil {
		t.Error("unknown chain accepted")
	}
}

func TestEquivalenceAllPass(t *testing.T) {
	res, err := RunEquivalence(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllPassed() {
		t.Fatalf("equivalence failures:\n%s", res.Format())
	}
	if len(res.Checks) != 4 {
		t.Errorf("checks = %d, want 4 (Snort, Maglev, 2 chains)", len(res.Checks))
	}
}

func TestVPNXShape(t *testing.T) {
	res, err := RunVPNX(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidualStackOps != 0 {
		t.Errorf("residual stack ops = %d, want full encap/decap cancellation", res.ResidualStackOps)
	}
	for _, row := range res.Rows {
		if red := row.WorkReduction(); red < 30 {
			t.Errorf("%s: VPN-chain cycle reduction %.1f%%, want substantial (stack elimination)", row.Platform, red)
		}
		if row.SBoxLat >= row.OriginalLat {
			t.Errorf("%s: SBox latency %.3f >= original %.3f", row.Platform, row.SBoxLat, row.OriginalLat)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	// Equal seeds reproduce every number exactly.
	a, err := RunFig4(cfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig4(cfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs between identical runs:\n%+v\n%+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestFormatsNonEmpty(t *testing.T) {
	checks := []struct {
		name string
		run  func() (string, error)
	}{
		{"fig4", func() (string, error) { r, err := RunFig4(cfg()); return safeFormat(r, err) }},
		{"table3", func() (string, error) { r, err := RunTable3(cfg()); return safeFormat(r, err) }},
		{"fig6", func() (string, error) { r, err := RunFig6(cfg()); return safeFormat(r, err) }},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			out, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, "BESS") || !strings.Contains(out, "OpenNetVM") {
				t.Errorf("format output missing platforms:\n%s", out)
			}
		})
	}
}

func safeFormat(r interface{ Format() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Format(), nil
}

func TestCrossoverShape(t *testing.T) {
	res, err := RunCrossover(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Figure 4's finding: SpeedyBox loses at one NF and wins from two.
	if res.Points[0].Wins() {
		t.Error("SpeedyBox should lose at chain length 1 (fast-path machinery cost)")
	}
	if res.BreakEvenLen != 2 {
		t.Errorf("break-even length = %d, want 2", res.BreakEvenLen)
	}
	// SBox cost grows slowly (rule metadata only); original grows by a
	// full NF per link.
	first, last := res.Points[0], res.Points[5]
	if growth := last.SBoxSub - first.SBoxSub; growth > (last.OriginalSub-first.OriginalSub)/5 {
		t.Errorf("SBox cost growth %f too steep vs original %f", growth, last.OriginalSub-first.OriginalSub)
	}
}

// TestRestartRecovery runs the crash-restart experiment: the engine
// restored from checkpoint+WAL must come back at ≥90% of the pre-crash
// hit rate, strictly beating the cold replacement, with real rules
// rehydrated from a real journal and zero drops.
func TestRestartRecovery(t *testing.T) {
	res, err := RunRestart(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("restart experiment failed:\n%s", res.Format())
	}
	if res.RestoredFrac <= res.ColdFrac {
		t.Errorf("restore (%.3f) did not beat cold start (%.3f):\n%s",
			res.RestoredFrac, res.ColdFrac, res.Format())
	}
	if res.RestoredRules == 0 || res.WALBytes == 0 || res.Checkpoints == 0 {
		t.Errorf("vacuous run: rules=%d walBytes=%d ckpts=%d",
			res.RestoredRules, res.WALBytes, res.Checkpoints)
	}
}

// TestMultiQueueDeterministic re-runs the worker sweep and expects
// bit-identical points: the experiment reports modeled tick counts, so
// nothing in it may read the wall clock.
func TestMultiQueueDeterministic(t *testing.T) {
	run := func() *MultiQueueResult {
		res, err := RunMultiQueue(Config{Seed: 3, Flows: 64})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("point %d diverged across identical seeds: %+v vs %+v",
				i, a.Points[i], b.Points[i])
		}
	}
	if a.Format() != b.Format() {
		t.Error("formatted sweeps differ across identical seeds")
	}
}
