package harness

import (
	"strings"
	"testing"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/fault"
	"github.com/fastpathnfv/speedybox/internal/mat"
)

// TestOracleEquivalenceUnderFaults is the CI-sized differential run:
// dozens of randomized fault schedules across both real-world chains,
// zero divergences allowed, and the degradation machinery must
// demonstrably engage (a run that injects nothing proves nothing).
func TestOracleEquivalenceUnderFaults(t *testing.T) {
	schedules := 60
	if testing.Short() {
		schedules = 10
	}
	res, err := RunOracle(OracleConfig{Seed: 1, Schedules: schedules})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("oracle failed:\n%s", res.Format())
	}
	if res.Injected == 0 {
		t.Error("no faults injected; the run was vacuous")
	}
	if res.Fallbacks == 0 {
		t.Error("no slow-path fallbacks; degradation never engaged")
	}
	if res.Recoveries == 0 {
		t.Error("no recoveries; the retry ladder never reinstalled a rule")
	}
	if !strings.Contains(res.Format(), "PASS") {
		t.Errorf("Format() missing PASS:\n%s", res.Format())
	}
}

// TestOracleBatchEquivalence runs the oracle with the fast engine in
// 32-packet vector mode: the batched data path must stay bit-identical
// to the scalar reference under the same fault schedules, and the
// seeded runs must also agree packet-for-packet with a scalar-fast-
// engine oracle run (batching changes no observable outcome).
func TestOracleBatchEquivalence(t *testing.T) {
	schedules := 40
	if testing.Short() {
		schedules = 8
	}
	batched, err := RunOracle(OracleConfig{Seed: 1, Schedules: schedules, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !batched.Passed() {
		t.Fatalf("batched oracle failed:\n%s", batched.Format())
	}
	if batched.Injected == 0 || batched.Fallbacks == 0 {
		t.Error("vacuous batched run: no faults or no fallbacks")
	}
	scalar, err := RunOracle(OracleConfig{Seed: 1, Schedules: schedules})
	if err != nil {
		t.Fatal(err)
	}
	if batched.Packets != scalar.Packets || batched.Injected != scalar.Injected ||
		batched.Fallbacks != scalar.Fallbacks || batched.Degraded != scalar.Degraded ||
		batched.Recoveries != scalar.Recoveries {
		t.Errorf("batched and scalar oracle runs disagree:\nbatched: %+v\nscalar:  %+v",
			batched, scalar)
	}
}

// TestOracleBatchCatchesTamper proves batch mode keeps the oracle's
// teeth: the flipped-verdict tamper must still be reported.
func TestOracleBatchCatchesTamper(t *testing.T) {
	res, err := RunOracle(OracleConfig{
		Seed: 1, Schedules: 2, Chain: 1, Batch: 32,
		Rates:      fault.UniformRates(0),
		TamperRule: func(r *mat.GlobalRule) { r.Drop = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("batched oracle passed a deliberately broken consolidation")
	}
}

// TestOracleCatchesBrokenConsolidation proves the oracle has teeth: a
// deliberately corrupted consolidated rule (verdict flipped to drop)
// must be reported as a divergence.
func TestOracleCatchesBrokenConsolidation(t *testing.T) {
	res, err := RunOracle(OracleConfig{
		Seed: 1, Schedules: 2, Chain: 1,
		Rates:      fault.UniformRates(0), // isolate the tamper
		TamperRule: func(r *mat.GlobalRule) { r.Drop = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("oracle passed a deliberately broken consolidation")
	}
	d := res.Divergences[0]
	if d.Seed == 0 || d.Packet < 0 {
		t.Errorf("divergence not pinpointed: %+v", d)
	}
	if !strings.Contains(res.Format(), "FAIL") {
		t.Errorf("Format() missing FAIL:\n%s", res.Format())
	}
}

// TestOracleCatchesCorruptedRewrite is a second tamper shape: silently
// corrupting the merged header rewrites must surface as a byte-level
// divergence, not as a drop mismatch.
func TestOracleCatchesCorruptedRewrite(t *testing.T) {
	res, err := RunOracle(OracleConfig{
		Seed: 3, Schedules: 2, Chain: 1,
		Rates: fault.UniformRates(0),
		TamperRule: func(r *mat.GlobalRule) {
			for i := range r.Modifies {
				for j := range r.Modifies[i].Value {
					r.Modifies[i].Value[j] ^= 0xff
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("oracle passed a corrupted header rewrite")
	}
}

// TestOracleReconfigEquivalence adds live chain reconfigurations to the
// fault schedules: gateways, filters and monitors are inserted, removed
// and reordered mid-trace on both engines at the same packet indices,
// in scalar and in 32-packet vector mode, and every packet must still
// agree. Fault-aborted plans are skipped on both engines — the rollback
// contract — and at least some plans must actually land for the run to
// count.
func TestOracleReconfigEquivalence(t *testing.T) {
	schedules := 30
	if testing.Short() {
		schedules = 6
	}
	for _, batch := range []int{0, 32} {
		res, err := RunOracle(OracleConfig{Seed: 1, Schedules: schedules, Reconfigs: 3, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed() {
			t.Fatalf("reconfig oracle (batch=%d) failed:\n%s", batch, res.Format())
		}
		if res.Reconfigs == 0 {
			t.Errorf("batch=%d: no reconfigurations applied; the run was vacuous", batch)
		}
		if res.Injected == 0 || res.Fallbacks == 0 {
			t.Errorf("batch=%d: vacuous run: no faults or no fallbacks", batch)
		}
	}
}

// TestOracleCatchesBrokenReconfig proves the reconfiguration oracle has
// teeth: resurrecting the pre-reconfiguration rules under the new epoch
// (a deliberately broken invalidation — exactly the bug the epoch
// machinery exists to prevent) must surface as a divergence, since the
// fast path then serves the retired chain's semantics while the
// reference runs the new chain.
func TestOracleCatchesBrokenReconfig(t *testing.T) {
	res, err := RunOracle(OracleConfig{
		Seed: 1, Schedules: 4, Chain: 1, Reconfigs: 2,
		Rates: fault.UniformRates(0), // isolate the tamper
		TamperReconfig: func(eng *core.Engine, pre []*mat.GlobalRule) {
			cur := eng.Global().Epoch()
			for _, r := range pre {
				broken := *r
				broken.Epoch = cur
				eng.Global().Install(&broken)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("oracle passed a deliberately broken epoch invalidation")
	}
}

// TestOracleCrashRestoreEquivalence kills and restores the fast engine
// mid-trace — checkpoint at the kill point, fresh chain, Restore from
// the encoded checkpoint plus the durable WAL prefix — under the usual
// fault chaos, in scalar and vector mode, and demands zero divergence
// from the uninterrupted reference. Closure-bearing rules cannot
// survive a restore, so their flows must transparently re-record.
func TestOracleCrashRestoreEquivalence(t *testing.T) {
	schedules := 30
	if testing.Short() {
		schedules = 6
	}
	for _, batch := range []int{0, 32} {
		res, err := RunOracle(OracleConfig{Seed: 1, Schedules: schedules, Crashes: 2, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed() {
			t.Fatalf("crash oracle (batch=%d) failed:\n%s", batch, res.Format())
		}
		if res.CrashRestores == 0 {
			t.Errorf("batch=%d: no crash/restore cycles; the run was vacuous", batch)
		}
		if res.Injected == 0 || res.Fallbacks == 0 {
			t.Errorf("batch=%d: vacuous run: no faults or no fallbacks", batch)
		}
	}
}

// TestOracleCrashWithReconfigs composes the two hardest schedules:
// live chain changes AND engine crashes in the same trace. A restore
// must rebuild the reconfigured chain composition (replaying surviving
// plans) and come back under the correct epoch, or rules consolidated
// before a reconfiguration would serve after it.
func TestOracleCrashWithReconfigs(t *testing.T) {
	schedules := 20
	if testing.Short() {
		schedules = 4
	}
	res, err := RunOracle(OracleConfig{Seed: 5, Schedules: schedules, Crashes: 2, Reconfigs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("crash+reconfig oracle failed:\n%s", res.Format())
	}
	if res.CrashRestores == 0 || res.Reconfigs == 0 {
		t.Errorf("vacuous run: crashes=%d reconfigs=%d", res.CrashRestores, res.Reconfigs)
	}
}

// TestOracleDeterministic re-runs the same seed and expects identical
// aggregate behaviour — the whole point of seeded schedules.
func TestOracleDeterministic(t *testing.T) {
	run := func() *OracleResult {
		res, err := RunOracle(OracleConfig{Seed: 7, Schedules: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Packets != b.Packets || a.Injected != b.Injected ||
		a.Fallbacks != b.Fallbacks || a.Recoveries != b.Recoveries {
		t.Errorf("equal seeds diverged: %+v vs %+v", a, b)
	}
}
