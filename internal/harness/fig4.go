package harness

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// Fig4Row is one (platform, #header actions) cell group of Figure 4:
// CPU cycles per packet for initial and subsequent packets, with and
// without SpeedyBox.
type Fig4Row struct {
	Platform     string
	NumHA        int
	OriginalInit float64
	SBoxInit     float64
	OriginalSub  float64
	SBoxSub      float64
}

// SubSaving returns the subsequent-packet cycle reduction in percent
// (negative when SpeedyBox costs more, as the paper reports for one
// header action).
func (r Fig4Row) SubSaving() float64 {
	if r.OriginalSub == 0 {
		return 0
	}
	return (r.OriginalSub - r.SBoxSub) / r.OriginalSub * 100
}

// Fig4Result reproduces Figure 4 (a) and (b): the effect of header
// action consolidation on chains of 1-3 IPFilters, 64B packets.
type Fig4Result struct {
	Rows []Fig4Row
}

// RunFig4 executes the experiment.
func RunFig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults(60)
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		PayloadMin: 4, PayloadMax: 12, // 64B-class packets (§VII-A)
		// DPDK-pktgen-style traffic: stateless streams with no TCP
		// handshake, so the first packet of each flow is the initial
		// packet, as on the paper's testbed.
		UDPFraction: 1.0,
		Interleave:  true,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{}
	for _, kind := range []PlatformKind{PlatformBESS, PlatformONVM} {
		for n := 1; n <= 3; n++ {
			n := n
			mk := func() ([]core.NF, error) { return filterChain(n) }
			orig, err := runVariant(kind, mk, cfg.options(core.BaselineOptions()), tr.Packets(), cfg.Batch)
			if err != nil {
				return nil, err
			}
			sbox, err := runVariant(kind, mk, cfg.options(core.DefaultOptions()), tr.Packets(), cfg.Batch)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig4Row{
				Platform:     kind.String(),
				NumHA:        n,
				OriginalInit: orig.MeanInitWork(),
				SBoxInit:     sbox.MeanInitWork(),
				OriginalSub:  orig.MeanSubWork(),
				SBoxSub:      sbox.MeanSubWork(),
			})
		}
	}
	return res, nil
}

// Format renders the figure as the paper's two panels.
func (r *Fig4Result) Format() string {
	t := &tableWriter{}
	t.title("Figure 4: Effect of header action consolidation (CPU cycles per packet)")
	t.row("platform", "#HA", "Original-init", "SBox-init", "Original-sub", "SBox-sub", "sub saving")
	for _, row := range r.Rows {
		t.row(row.Platform, fmt.Sprintf("%d", row.NumHA),
			f1(row.OriginalInit), f1(row.SBoxInit),
			f1(row.OriginalSub), f1(row.SBoxSub),
			fmt.Sprintf("%.1f%%", row.SubSaving()))
	}
	return t.String()
}
