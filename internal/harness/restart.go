package harness

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/trace"
	"github.com/fastpathnfv/speedybox/internal/wal"
)

// The restart experiment measures what durability buys the data plane:
// a subsequent-packet-dominated trace runs through a 3-IPFilter chain
// (declarative consolidations only, so every rule is restorable) with
// the WAL attached and periodic checkpoints; mid-trace the engine is
// killed and a fresh one continues — once restored from the last
// checkpoint plus the durable WAL prefix, and once cold. The per-window
// fast-path hit rate shows the difference: a restored engine resumes
// consolidated forwarding almost immediately (only the group-commit
// tail and post-checkpoint churn re-record), while a cold engine pays
// one slow-path traversal per live flow all over again.

// RestartWindow is one measurement window of the restored run.
type RestartWindow struct {
	// Start is the window's first packet index.
	Start int
	// Packets is the window size in packets.
	Packets int
	// Eligible counts the window's fast-path-eligible packets
	// (subsequent + final). HitRate is FastPath/Packets — over the
	// whole window, not just eligible packets, because a cold restart
	// reclassifies every live flow's next packet as initial: those
	// slow-path traversals are exactly the recovery cost being
	// measured, so they must stay in the denominator.
	Eligible int
	HitRate  float64
	// AfterCrash marks windows at or past the kill/restore point.
	AfterCrash bool
}

// RestartResult aggregates the crash-restart recovery experiment.
type RestartResult struct {
	Windows []RestartWindow
	// CrashAt is the packet index where the engine was killed.
	CrashAt int
	// Checkpoints is how many periodic checkpoints were taken before
	// the crash; WALBytes is the durable journal size at the kill point.
	Checkpoints int
	WALBytes    int
	// RestoredRules is the Global MAT occupancy right after Restore.
	RestoredRules int
	// Baseline is the mean pre-crash window hit rate (excluding the
	// first window, which warms the tables up).
	Baseline float64
	// Restored is the first full post-crash window's hit rate with
	// checkpoint+WAL restore; RestoredFrac is its fraction of Baseline.
	Restored     float64
	RestoredFrac float64
	// Cold is the same window's hit rate when the replacement engine
	// starts empty; ColdFrac is its fraction of Baseline.
	Cold     float64
	ColdFrac float64
	// Drops counts dropped packets across the restored run (must be 0).
	Drops int
}

// Passed reports whether the acceptance bar held: no packet dropped and
// the restored engine's first post-crash window at or above 90% of the
// pre-crash baseline.
func (r *RestartResult) Passed() bool {
	return r.Drops == 0 && r.Baseline > 0 && r.RestoredFrac >= 0.9
}

// Format renders the experiment outcome.
func (r *RestartResult) Format() string {
	t := &tableWriter{}
	t.title(fmt.Sprintf("Crash restart: hit-rate recovery, checkpoint+WAL restore vs cold start (killed at packet %d)", r.CrashAt))
	t.row("window start", "packets", "eligible", "hit rate", "phase")
	for _, w := range r.Windows {
		phase := "pre-crash"
		if w.AfterCrash {
			phase = "post-restore"
		}
		t.row(fmt.Sprintf("%d", w.Start), fmt.Sprintf("%d", w.Packets),
			fmt.Sprintf("%d", w.Eligible), f3(w.HitRate), phase)
	}
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	t.row("")
	t.row("baseline", "restored", "restored/baseline", "cold", "cold/baseline", "ckpts", "wal bytes", "rules back", "drops", "result")
	t.row(f3(r.Baseline), f3(r.Restored), f3(r.RestoredFrac),
		f3(r.Cold), f3(r.ColdFrac),
		fmt.Sprintf("%d", r.Checkpoints), fmt.Sprintf("%d", r.WALBytes),
		fmt.Sprintf("%d", r.RestoredRules),
		fmt.Sprintf("%d", r.Drops), status)
	return t.String()
}

// restartRun is one trace replay with a mid-trace engine replacement.
type restartRun struct {
	windows       []RestartWindow
	crashAt       int
	checkpoints   int
	walBytes      int
	restoredRules int
	drops         int
}

// runRestartTrace replays the seeded trace through the chain, killing
// the engine at the mid-trace window boundary and continuing on a
// fresh one — restored from the last periodic checkpoint plus the
// durable WAL prefix when restore is set, cold otherwise.
func runRestartTrace(cfg Config, batch, window, ckptEvery int, restore bool) (*restartRun, error) {
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		MeanPackets: 64, UDPFraction: 1.0,
		Interleave: true,
	})
	if err != nil {
		return nil, err
	}
	pkts := tr.Packets()

	mk := func() (*core.Engine, error) {
		chain, err := filterChain(3)
		if err != nil {
			return nil, err
		}
		return core.NewEngine(chain, cfg.options(core.DefaultOptions()))
	}
	eng, err := mk()
	if err != nil {
		return nil, err
	}
	eng.AttachWAL(wal.NewWriter(wal.Options{}))

	crashAt := (len(pkts) / 2 / window) * window
	if crashAt == 0 {
		crashAt = window
	}
	out := &restartRun{crashAt: crashAt}

	var lastCkpt []byte
	cb := core.NewBatch(batch)
	prev := eng.Stats()
	crashed := false

	for off := 0; off < len(pkts); off += window {
		if !crashed && off > 0 && off < crashAt && off%ckptEvery == 0 {
			cp, err := eng.Checkpoint()
			if err != nil {
				return nil, fmt.Errorf("harness: checkpoint at packet %d: %w", off, err)
			}
			lastCkpt = cp.Encode()
			out.checkpoints++
		}
		if off == crashAt {
			// The crash: only what reached the disk survives — the last
			// checkpoint image and the group-committed journal prefix.
			durable := append([]byte(nil), eng.WAL().DurableBytes()...)
			out.walBytes = len(durable)
			eng, err = mk()
			if err != nil {
				return nil, err
			}
			if restore && lastCkpt != nil {
				cp, err := wal.DecodeCheckpoint(lastCkpt)
				if err != nil {
					return nil, fmt.Errorf("harness: decode checkpoint: %w", err)
				}
				if err := eng.Restore(cp, durable); err != nil {
					return nil, fmt.Errorf("harness: restore: %w", err)
				}
			}
			out.restoredRules = eng.Global().Len()
			eng.AttachWAL(wal.NewWriter(wal.Options{}))
			cb = core.NewBatch(batch)
			prev = eng.Stats()
			crashed = true
		}
		end := off + window
		if end > len(pkts) {
			end = len(pkts)
		}
		for i := off; i < end; i += batch {
			j := i + batch
			if j > end {
				j = end
			}
			rs, err := eng.ProcessBatch(pkts[i:j], cb)
			if err != nil {
				return nil, fmt.Errorf("harness: batch at packet %d: %w", i, err)
			}
			for k := range rs {
				if rs[k].Verdict == core.VerdictDrop {
					out.drops++
				}
			}
		}
		st := eng.Stats()
		eligible := (st.Subsequent - prev.Subsequent) + (st.Final - prev.Final)
		w := RestartWindow{
			Start: off, Packets: end - off,
			Eligible: int(eligible), AfterCrash: crashed,
		}
		if end > off {
			w.HitRate = float64(st.FastPath-prev.FastPath) / float64(end-off)
		}
		out.windows = append(out.windows, w)
		prev = st
	}
	return out, nil
}

// RunRestart executes the crash-restart recovery experiment.
func RunRestart(cfg Config) (*RestartResult, error) {
	cfg = cfg.withDefaults(256)
	batch := cfg.Batch
	if batch <= 1 {
		batch = 32
	}
	const window = 512
	ckptEvery := 4 * window

	restored, err := runRestartTrace(cfg, batch, window, ckptEvery, true)
	if err != nil {
		return nil, err
	}
	cold, err := runRestartTrace(cfg, batch, window, ckptEvery, false)
	if err != nil {
		return nil, err
	}

	res := &RestartResult{
		Windows:       restored.windows,
		CrashAt:       restored.crashAt,
		Checkpoints:   restored.checkpoints,
		WALBytes:      restored.walBytes,
		RestoredRules: restored.restoredRules,
		Drops:         restored.drops,
	}
	var preSum float64
	preN := 0
	firstAfter := -1
	for i, w := range restored.windows {
		if w.AfterCrash {
			if firstAfter < 0 {
				firstAfter = i
			}
			continue
		}
		if i == 0 {
			continue // warmup: tables start empty
		}
		preSum += w.HitRate
		preN++
	}
	if preN > 0 {
		res.Baseline = preSum / float64(preN)
	}
	if firstAfter >= 0 {
		res.Restored = restored.windows[firstAfter].HitRate
		if firstAfter < len(cold.windows) {
			res.Cold = cold.windows[firstAfter].HitRate
		}
	}
	if res.Baseline > 0 {
		res.RestoredFrac = res.Restored / res.Baseline
		res.ColdFrac = res.Cold / res.Baseline
	}
	return res, nil
}
