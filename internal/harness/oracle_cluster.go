package harness

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/fastpathnfv/speedybox/internal/cluster"
	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/fault"
	"github.com/fastpathnfv/speedybox/internal/nf/gateway"
	"github.com/fastpathnfv/speedybox/internal/nf/ipfilter"
	"github.com/fastpathnfv/speedybox/internal/platform"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// The cluster oracle extends the differential equivalence property to
// elastic scale-out: the reference is one static, pure slow-path
// engine that never rebalances, while the system under test is a
// cluster of SpeedyBox engines behind the consistent-hash steerer,
// scaling 1→2→4→3 at seeded mid-trace packet indices. Every scale
// step live-migrates the reassigned flows — flow entry, consolidated
// rule, ladder reset — through the serialized migration record, and
// the oracle demands that no packet anywhere near a cutover is
// dropped, reordered onto a stale owner, or processed to a different
// verdict or different rewritten bytes than the uninterrupted
// reference produced. Injected migration aborts must roll whole
// rebalances back with the same invisibility.

// ChainStateless builds a pure header-transform chain (IPFilter ->
// Gateway): no NF registers per-flow state functions, so every
// consolidated rule is a batch-free header program — exactly the
// rules that travel whole inside a migration record instead of
// demoting to re-record. The cluster oracle cycles it in alongside
// the paper's two chains so rule-carrying migration is exercised (and
// tamperable) as well as the demotion path the monitor-bearing chains
// force.
func ChainStateless() ([]core.NF, error) {
	fw, err := ipfilter.New(ipfilter.Config{
		Name:  "ipfilter",
		Rules: ipfilter.PadRules(nil, 100),
	})
	if err != nil {
		return nil, err
	}
	gw, err := gateway.New(gateway.Config{
		Name:       "gateway",
		NextHopMAC: [6]byte{2, 0, 0, 0, 0, 0xfe},
	})
	if err != nil {
		return nil, err
	}
	return []core.NF{fw, gw}, nil
}

// clusterScaleTargets is the per-schedule scaling walk: out, further
// out, back in — exercising add-migration, spread-migration and
// drain-migration in one trace.
var clusterScaleTargets = [...]int{2, 4, 3}

// scaleEvent schedules one ScaleTo call at a trace index.
type scaleEvent struct {
	at     int
	target int
}

// buildScaleEvents derives the seeded scale offsets, sorted, inside
// the middle 80% of the trace.
func buildScaleEvents(seed int64, pkts int) []scaleEvent {
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
	lo, hi := pkts/10, pkts*9/10
	if hi <= lo {
		hi = lo + 1
	}
	offsets := make([]int, len(clusterScaleTargets))
	for i := range offsets {
		offsets[i] = lo + rng.Intn(hi-lo)
	}
	sort.Ints(offsets)
	events := make([]scaleEvent, len(offsets))
	for i, at := range offsets {
		events[i] = scaleEvent{at: at, target: clusterScaleTargets[i]}
	}
	return events
}

// runClusterSchedule replays one fault schedule through the static
// reference engine and the scaling cluster.
func runClusterSchedule(cfg OracleConfig, sched int, seed int64, chain int, rates map[fault.Kind]float64, res *OracleResult) error {
	tr, err := trace.Generate(trace.Config{
		Seed: seed, Flows: cfg.Flows,
		AlertFraction: 0.15, LogFraction: 0.15,
		Interleave: true,
	})
	if err != nil {
		return err
	}
	ref, err := buildOracleChain(chain)
	if err != nil {
		return err
	}
	fast, err := buildOracleChain(chain)
	if err != nil {
		return err
	}
	refEng, err := core.NewEngine(ref.nfs, core.BaselineOptions())
	if err != nil {
		return err
	}
	inj := fault.New(fault.Config{Seed: seed, Rates: rates})
	if cfg.Rates == nil {
		// The abort injector is consulted once per *flow that must
		// move*, so the schedule-default 8% rate would abort nearly
		// every multi-flow rebalance and the oracle would never watch
		// a migration commit. A low per-flow rate makes most
		// rebalances land while still rolling a healthy minority back.
		inj.SetRate(fault.KindMigrationAbort, 0.02)
	}
	fastOpts := core.DefaultOptions()
	fastOpts.Faults = inj
	cl, err := cluster.New(cluster.Config{
		Chain:     fast.nfs,
		Options:   fastOpts,
		Instances: 1,
		Durable:   cfg.Crashes > 0,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	cl.TamperMigration = cfg.TamperMigration

	refPkts, fastPkts := tr.Packets(), tr.Packets()
	diverge := func(pkt int, format string, args ...any) {
		res.Divergences = append(res.Divergences, OracleDivergence{
			Schedule: sched, Seed: seed, Packet: pkt,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	scales := buildScaleEvents(seed, len(refPkts))
	nextScale := 0

	var plan []fault.Flap
	if ref.lb != nil {
		plan = inj.FlapPlan(len(refPkts), 3)
	}
	next := 0

	var crashes []fault.Crash
	if cfg.Crashes > 0 {
		inj.SetRate(fault.KindCrashRestore, float64(cfg.Crashes-1)/4+0.05)
		crashes = inj.CrashPlan(len(refPkts))
	}
	nextCrash := 0
	crashed := 0

	var reEvents []reconfigEvent
	if cfg.Reconfigs > 0 {
		chainNames := make([]string, len(ref.nfs))
		for i, nf := range ref.nfs {
			chainNames[i] = nf.Name()
		}
		reEvents = buildReconfigEvents(seed, cfg.Reconfigs, len(refPkts), chainNames)
	}
	nextRe := 0
	applyReconfig := func(ev reconfigEvent) error {
		fastPlan, err := ev.mk()
		if err != nil {
			return err
		}
		if ferr := cl.Reconfigure(fastPlan); ferr != nil {
			// An aborted (or, after an earlier abort, validation-
			// rejected) plan left every instance untouched — instance
			// 0 decides before the rest apply — so the reference skips
			// it too and the engines stay in lockstep.
			if errors.Is(ferr, core.ErrReconfigAborted) {
				res.ReconfigAborts++
			}
			return nil
		}
		refPlan, err := ev.mk()
		if err != nil {
			return err
		}
		if rerr := refEng.Reconfigure(refPlan); rerr != nil {
			return fmt.Errorf("reference reconfigure (%s): %v", refPlan, rerr)
		}
		res.Reconfigs++
		return nil
	}

	// bankStats folds an instance's degradation counters into the run
	// totals before its engine is discarded (crash) or the schedule
	// ends.
	bankStats := func(st core.Stats) {
		res.Fallbacks += st.SlowPathFallbacks
		res.Degraded += st.DegradedPackets
		res.Recoveries += st.FaultRecoveries
	}

	var pb *platform.Batch
	if cfg.Batch > 1 {
		pb = platform.NewBatch(cfg.Batch)
	}

	// compare checks one fast measurement against its reference twin.
	compare := func(k int, m platform.Measurement) bool {
		refRes, refErr := refEng.ProcessPacket(refPkts[k])
		if refErr != nil {
			diverge(k, "reference error: %v", refErr)
			return false
		}
		res.Packets++
		if refRes.Verdict != m.Result.Verdict {
			diverge(k, "verdict: ref %v, cluster %v", refRes.Verdict, m.Result.Verdict)
			return false
		}
		if refPkts[k].Dropped() != fastPkts[k].Dropped() {
			diverge(k, "dropped: ref %v, cluster %v", refPkts[k].Dropped(), fastPkts[k].Dropped())
			return false
		}
		if !refPkts[k].Dropped() && !bytes.Equal(refPkts[k].Data(), fastPkts[k].Data()) {
			diverge(k, "rewritten bytes differ (%d vs %d bytes)",
				len(refPkts[k].Data()), len(fastPkts[k].Data()))
			return false
		}
		return true
	}

	i := 0
scan:
	for i < len(refPkts) {
		for nextScale < len(scales) && scales[nextScale].at <= i {
			ev := scales[nextScale]
			nextScale++
			if serr := cl.ScaleTo(ev.target); serr != nil {
				if !errors.Is(serr, cluster.ErrMigrationAborted) {
					return fmt.Errorf("packet %d: scale to %d: %w", i, ev.target, serr)
				}
				// The rebalance rolled back whole; the cluster stays
				// at a consistent intermediate size and the packet
				// stream must not be able to tell.
			}
		}
		for nextCrash < len(crashes) && crashes[nextCrash].At <= i {
			nextCrash++
			idx := crashed % cl.Len()
			crashed++
			// The crashed engine's counters survive inside
			// cl.Stats(): the cluster banks them on replacement.
			if cerr := cl.CrashInstance(idx); cerr != nil {
				return fmt.Errorf("packet %d: crash instance %d: %w", i, idx, cerr)
			}
			res.CrashRestores++
		}
		for next < len(plan) && plan[next].At <= i {
			f := plan[next]
			next++
			if f.Restore {
				_ = ref.lb.RestoreBackend(f.Backend)
				_ = fast.lb.RestoreBackend(f.Backend)
			} else {
				_ = ref.lb.FailBackend(f.Backend)
				_ = fast.lb.FailBackend(f.Backend)
			}
		}
		for nextRe < len(reEvents) && reEvents[nextRe].at <= i {
			ev := reEvents[nextRe]
			nextRe++
			if err := applyReconfig(ev); err != nil {
				return err
			}
		}
		end := i + 1
		if pb != nil {
			end = i + cfg.Batch
			if end > len(refPkts) {
				end = len(refPkts)
			}
			if nextScale < len(scales) && scales[nextScale].at < end {
				end = scales[nextScale].at
			}
			if next < len(plan) && plan[next].At < end {
				end = plan[next].At
			}
			if nextRe < len(reEvents) && reEvents[nextRe].at < end {
				end = reEvents[nextRe].at
			}
			if nextCrash < len(crashes) && crashes[nextCrash].At < end {
				end = crashes[nextCrash].At
			}
		}
		agree := true
		if pb != nil {
			err := cl.ProcessRuns(fastPkts[i:end], cfg.Batch, pb, func(off int, ms []platform.Measurement) error {
				for j, m := range ms {
					if !compare(i+off+j, m) {
						agree = false
						return errClusterDiverged
					}
				}
				return nil
			})
			if err != nil && !errors.Is(err, errClusterDiverged) {
				return fmt.Errorf("packet %d: cluster batch: %w", i, err)
			}
		} else {
			for k := i; k < end; k++ {
				m, ferr := cl.Process(fastPkts[k])
				if ferr != nil {
					return fmt.Errorf("packet %d: cluster err %v", k, ferr)
				}
				if !compare(k, m) {
					agree = false
					break
				}
			}
		}
		if !agree {
			break scan
		}
		i = end
	}

	if ref.mon != nil {
		if rc, fc := ref.mon.Totals(), fast.mon.Totals(); rc != fc {
			diverge(-1, "monitor counters: ref %+v, cluster %+v", rc, fc)
		}
	}
	if ref.ids != nil {
		rl, fl := ref.ids.Logs(), fast.ids.Logs()
		if len(rl) != len(fl) {
			diverge(-1, "snort logs: ref %d entries, cluster %d", len(rl), len(fl))
		} else {
			for j := range rl {
				if rl[j].RuleID != fl[j].RuleID || rl[j].Type != fl[j].Type {
					diverge(-1, "snort log %d: ref (%d,%v), cluster (%d,%v)",
						j, rl[j].RuleID, rl[j].Type, fl[j].RuleID, fl[j].Type)
					break
				}
			}
		}
	}

	bankStats(cl.Stats())
	res.Injected += inj.InjectedTotal()
	res.Migrations += cl.Migrations()
	res.MigrationAborts += cl.Aborts()
	res.Rebalances += cl.Rebalances()
	return nil
}

// errClusterDiverged aborts a batched sub-run after a recorded
// divergence without surfacing a schedule error.
var errClusterDiverged = errors.New("cluster oracle divergence")
