package harness

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// CrossoverPoint is one chain length's original-vs-SpeedyBox
// comparison on the subsequent-packet work metric.
type CrossoverPoint struct {
	ChainLen    int
	OriginalSub float64
	SBoxSub     float64
}

// Wins reports whether SpeedyBox is cheaper at this length.
func (p CrossoverPoint) Wins() bool { return p.SBoxSub < p.OriginalSub }

// CrossoverResult is an extension experiment: Figure 4 shows SpeedyBox
// *losing* at one header action and winning at two — this sweep
// locates the break-even chain length precisely and confirms the
// fixed fast-path machinery cost (FID hash + metadata + Event Table
// probe + Global MAT lookup) is the crossover's cause. It quantifies
// the design trade-off the paper concedes in §VII-A1.
type CrossoverResult struct {
	Points []CrossoverPoint
	// BreakEvenLen is the smallest chain length where SpeedyBox wins.
	BreakEvenLen int
}

// RunCrossover executes the sweep over 1-6 IPFilter chains.
func RunCrossover(cfg Config) (*CrossoverResult, error) {
	cfg = cfg.withDefaults(60)
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		PayloadMin: 4, PayloadMax: 12,
		UDPFraction: 1.0,
		Interleave:  true,
	})
	if err != nil {
		return nil, err
	}
	res := &CrossoverResult{}
	for n := 1; n <= 6; n++ {
		n := n
		mk := func() ([]core.NF, error) { return filterChain(n) }
		orig, err := runVariant(PlatformBESS, mk, cfg.options(core.BaselineOptions()), tr.Packets(), cfg.Batch)
		if err != nil {
			return nil, err
		}
		sbox, err := runVariant(PlatformBESS, mk, cfg.options(core.DefaultOptions()), tr.Packets(), cfg.Batch)
		if err != nil {
			return nil, err
		}
		pt := CrossoverPoint{
			ChainLen:    n,
			OriginalSub: orig.MeanSubWork(),
			SBoxSub:     sbox.MeanSubWork(),
		}
		if pt.Wins() && res.BreakEvenLen == 0 {
			res.BreakEvenLen = n
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Format renders the sweep.
func (r *CrossoverResult) Format() string {
	t := &tableWriter{}
	t.title("Extension: consolidation crossover — break-even chain length (BESS, subsequent-packet cycles)")
	t.row("len", "original", "SBox", "winner")
	for _, p := range r.Points {
		winner := "original"
		if p.Wins() {
			winner = "SBox"
		}
		t.row(fmt.Sprintf("%d", p.ChainLen), f1(p.OriginalSub), f1(p.SBoxSub), winner)
	}
	t.row("break-even length:", fmt.Sprintf("%d", r.BreakEvenLen), "", "")
	return t.String()
}
