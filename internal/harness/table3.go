package harness

import (
	"fmt"
	"sort"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/nf/ipfilter"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// dropChain builds the Table III chain: NF1 and NF2 forward all flows,
// NF3 drops them.
func dropChain() ([]core.NF, error) {
	chain, err := filterChain(2)
	if err != nil {
		return nil, err
	}
	deny, err := ipfilter.New(ipfilter.Config{
		Name:        "ipfilter3",
		Rules:       ipfilter.PadRules(nil, 100),
		DefaultDeny: true,
	})
	if err != nil {
		return nil, err
	}
	return append(chain, deny), nil
}

// Table3Row is one platform's early-packet-drop numbers: per-NF CPU
// cycles on the original path and the SpeedyBox aggregate.
type Table3Row struct {
	Platform      string
	PerNF         []float64 // subsequent-packet cycles per NF, chain order
	Aggregate     float64
	SBoxAggregate float64
}

// Saving returns the aggregate cycle reduction in percent.
func (r Table3Row) Saving() float64 {
	if r.Aggregate == 0 {
		return 0
	}
	return (r.Aggregate - r.SBoxAggregate) / r.Aggregate * 100
}

// Table3Result reproduces Table III: a chain of three IPFilters with
// actions {forward, forward, drop}; SpeedyBox drops subsequent packets
// at the head of the chain.
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 executes the experiment.
func RunTable3(cfg Config) (*Table3Result, error) {
	cfg = cfg.withDefaults(60)
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		PayloadMin: 4, PayloadMax: 12,
		// DPDK-pktgen-style traffic (see fig4.go).
		UDPFraction: 1.0,
		Interleave:  true,
	})
	if err != nil {
		return nil, err
	}
	mk := dropChain

	res := &Table3Result{}
	for _, kind := range []PlatformKind{PlatformBESS, PlatformONVM} {
		orig, err := runVariant(kind, mk, cfg.options(core.BaselineOptions()), tr.Packets(), cfg.Batch)
		if err != nil {
			return nil, err
		}
		sbox, err := runVariant(kind, mk, cfg.options(core.DefaultOptions()), tr.Packets(), cfg.Batch)
		if err != nil {
			return nil, err
		}
		row := Table3Row{Platform: kind.String(), SBoxAggregate: sbox.MeanSubWork()}
		names := make([]string, 0, len(orig.PerNFSub))
		for name := range orig.PerNFSub {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := mean(orig.PerNFSub[name])
			row.PerNF = append(row.PerNF, m)
			row.Aggregate += m
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the table in the paper's layout.
func (r *Table3Result) Format() string {
	t := &tableWriter{}
	t.title("Table III: Early packet drop saves CPU cycles (subsequent packets)")
	t.row("(CPU cycle)", "NF1", "NF2", "NF3", "Aggregate")
	for _, row := range r.Rows {
		cells := []string{row.Platform}
		for _, v := range row.PerNF {
			cells = append(cells, f1(v))
		}
		for len(cells) < 4 {
			cells = append(cells, "—")
		}
		cells = append(cells, f1(row.Aggregate))
		t.row(cells...)
		t.row(row.Platform+" w/ SBox", "—", "—", "—",
			fmt.Sprintf("%s (%s)", f1(row.SBoxAggregate), pct(row.Aggregate, row.SBoxAggregate)))
	}
	return t.String()
}
