package harness

import (
	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// Fig7Row is one platform's latency breakdown of the Snort+Monitor
// chain: total reduction and the share contributed by each
// optimization, obtained by ablation (header-consolidation-only and
// SF-parallelism-only runs).
type Fig7Row struct {
	Platform       string
	OriginalMicros float64
	SBoxMicros     float64
	// HAOnlyMicros and SFOnlyMicros are the ablation latencies.
	HAOnlyMicros float64
	SFOnlyMicros float64
}

// TotalReduction returns the full-SpeedyBox latency reduction in
// percent (paper: 35.9% on BESS).
func (r Fig7Row) TotalReduction() float64 {
	if r.OriginalMicros == 0 {
		return 0
	}
	return (r.OriginalMicros - r.SBoxMicros) / r.OriginalMicros * 100
}

// Shares splits the total reduction between header-action
// consolidation and state-function parallelism, attributing each
// optimization its standalone reduction and normalizing (paper:
// 49.4% HA / 50.6% SF on BESS; 41.1% / 58.9% on ONVM).
func (r Fig7Row) Shares() (haShare, sfShare float64) {
	haGain := r.OriginalMicros - r.HAOnlyMicros
	sfGain := r.OriginalMicros - r.SFOnlyMicros
	if haGain < 0 {
		haGain = 0
	}
	if sfGain < 0 {
		sfGain = 0
	}
	total := haGain + sfGain
	if total == 0 {
		return 0, 0
	}
	return haGain / total * 100, sfGain / total * 100
}

// Fig7Result reproduces Figure 7.
type Fig7Result struct {
	Rows []Fig7Row
}

// RunFig7 executes the experiment.
func RunFig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults(80)
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		PayloadMin: 64, PayloadMax: 200,
		Interleave: true,
	})
	if err != nil {
		return nil, err
	}
	variants := []struct {
		opts core.Options
		set  func(*Fig7Row, float64)
	}{
		{cfg.options(core.BaselineOptions()), func(r *Fig7Row, v float64) { r.OriginalMicros = v }},
		{cfg.options(core.DefaultOptions()), func(r *Fig7Row, v float64) { r.SBoxMicros = v }},
		{core.Options{EnableSpeedyBox: true, ConsolidateHeaders: true, ParallelSF: false},
			func(r *Fig7Row, v float64) { r.HAOnlyMicros = v }},
		{core.Options{EnableSpeedyBox: true, ConsolidateHeaders: false, ParallelSF: true},
			func(r *Fig7Row, v float64) { r.SFOnlyMicros = v }},
	}
	res := &Fig7Result{}
	for _, kind := range []PlatformKind{PlatformBESS, PlatformONVM} {
		row := Fig7Row{Platform: kind.String()}
		for _, v := range variants {
			part, err := runVariant(kind, snortMonitorChain, v.opts, tr.Packets(), cfg.Batch)
			if err != nil {
				return nil, err
			}
			v.set(&row, part.MeanSubLatencyMicros())
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the breakdown.
func (r *Fig7Result) Format() string {
	t := &tableWriter{}
	t.title("Figure 7: Latency reduction of Snort+Monitor and per-optimization contributions")
	t.row("platform", "orig (µs)", "SBox (µs)", "reduction", "HA share", "SF share")
	for _, row := range r.Rows {
		ha, sf := row.Shares()
		t.row(row.Platform,
			f3(row.OriginalMicros), f3(row.SBoxMicros),
			f1(row.TotalReduction())+"%",
			f1(ha)+"%", f1(sf)+"%")
	}
	return t.String()
}
