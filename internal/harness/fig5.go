package harness

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/nf/synthetic"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// synthSFCycles is the modeled cost of one synthetic state function,
// chosen Snort-inspection-equivalent (§VII-A2) for a full-sized
// payload.
const synthSFCycles = 1200

// Fig5Point is one (platform, #state functions) measurement.
type Fig5Point struct {
	Platform     string
	SBox         bool
	NumSF        int
	RateMpps     float64
	LatencyMicro float64
}

// Fig5Result reproduces Figure 5: the effect of state function
// parallelism on processing rate (a) and latency (b) for chains of
// 1-3 identical synthetic NFs whose read-class state functions can
// run in parallel per Table I.
type Fig5Result struct {
	Points []Fig5Point
}

// RunFig5 executes the experiment.
func RunFig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults(60)
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		PayloadMin: 4, PayloadMax: 12,
		// DPDK-pktgen-style traffic (see fig4.go).
		UDPFraction: 1.0,
		Interleave:  true,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	for _, kind := range []PlatformKind{PlatformBESS, PlatformONVM} {
		for n := 1; n <= 3; n++ {
			n := n
			mk := func() ([]core.NF, error) {
				chain := make([]core.NF, n)
				for i := 0; i < n; i++ {
					nf, err := synthetic.New(synthetic.Config{
						Name:         fmt.Sprintf("synth%d", i+1),
						Cycles:       synthSFCycles,
						TouchPayload: true,
					})
					if err != nil {
						return nil, err
					}
					chain[i] = nf
				}
				return chain, nil
			}
			for _, sbox := range []bool{false, true} {
				opts := cfg.options(core.BaselineOptions())
				if sbox {
					opts = cfg.options(core.DefaultOptions())
				}
				part, err := runVariant(kind, mk, opts, tr.Packets(), cfg.Batch)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, Fig5Point{
					Platform:     kind.String(),
					SBox:         sbox,
					NumSF:        n,
					RateMpps:     part.SubRateMpps(),
					LatencyMicro: part.MeanSubLatencyMicros(),
				})
			}
		}
	}
	return res, nil
}

// Format renders both panels.
func (r *Fig5Result) Format() string {
	t := &tableWriter{}
	t.title("Figure 5: Effect of state function parallelism")
	t.row("platform", "#SF", "rate (Mpps)", "latency (µs)")
	for _, p := range r.Points {
		name := p.Platform
		if p.SBox {
			name += " w/ SBox"
		}
		t.row(name, fmt.Sprintf("%d", p.NumSF), f3(p.RateMpps), f3(p.LatencyMicro))
	}
	return t.String()
}

// point finds a result point (tests and EXPERIMENTS generation).
func (r *Fig5Result) point(platform string, sbox bool, n int) (Fig5Point, bool) {
	for _, p := range r.Points {
		if p.Platform == platform && p.SBox == sbox && p.NumSF == n {
			return p, true
		}
	}
	return Fig5Point{}, false
}

// BESSSpeedupAt3SF returns the rate ratio the paper headlines ("BESS
// with SpeedyBox achieves 2.1x processing rate" at 3 SFs).
func (r *Fig5Result) BESSSpeedupAt3SF() float64 {
	orig, ok1 := r.point("BESS", false, 3)
	sbox, ok2 := r.point("BESS", true, 3)
	if !ok1 || !ok2 || orig.RateMpps == 0 {
		return 0
	}
	return sbox.RateMpps / orig.RateMpps
}

// BESSLatencyReductionAt3SF returns the latency cut at 3 SFs (paper:
// 59%).
func (r *Fig5Result) BESSLatencyReductionAt3SF() float64 {
	orig, ok1 := r.point("BESS", false, 3)
	sbox, ok2 := r.point("BESS", true, 3)
	if !ok1 || !ok2 || orig.LatencyMicro == 0 {
		return 0
	}
	return (orig.LatencyMicro - sbox.LatencyMicro) / orig.LatencyMicro * 100
}
