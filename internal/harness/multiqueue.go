package harness

import (
	"fmt"
	"time"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/platform"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// MultiQueuePoint is one worker count's measurement.
type MultiQueuePoint struct {
	Workers int
	// WallMillis is the measured wall-clock time for the whole trace.
	WallMillis float64
	// RateMppsWall is the wall-clock processing rate: trace packets /
	// measured seconds. It only scales with workers when the host has
	// that many cores to give.
	RateMppsWall float64
	// RateMppsModel is the cost model's aggregate rate: per-core
	// modeled rate times the effective parallelism of the queue
	// partition. This is the simulator's throughput prediction for an
	// RSS deployment, independent of the host's core count.
	RateMppsModel float64
	// Speedup is the modeled rate relative to the 1-worker run.
	Speedup float64
}

// MultiQueueResult is an extension experiment: the paper's platforms
// pin the chain to one core (BESS) or one core per NF (ONVM); the
// multi-queue runner instead models an RSS NIC spreading flows across
// cores that share the engine's FID-sharded tables. The sweep measures
// how real wall-clock throughput of the simulator scales with workers
// on a subsequent-packet-dominated trace — the regime where per-packet
// work is small and shared-state contention, if any, dominates.
type MultiQueueResult struct {
	Packets int
	Flows   int
	Points  []MultiQueuePoint
}

// RunMultiQueue executes the worker sweep on a 3-IPFilter chain.
func RunMultiQueue(cfg Config) (*MultiQueueResult, error) {
	cfg = cfg.withDefaults(256)
	res := &MultiQueueResult{Flows: cfg.Flows}
	var baseRate float64
	for _, workers := range []int{1, 2, 4, 8} {
		// Fresh trace per run: platforms consume the packet buffers.
		tr, err := trace.Generate(trace.Config{
			Seed: cfg.Seed, Flows: cfg.Flows,
			MeanPackets: 64, UDPFraction: 1.0,
			Interleave: true,
		})
		if err != nil {
			return nil, err
		}
		pkts := tr.Packets()
		res.Packets = len(pkts)

		p, err := buildPlatform(PlatformBESS, func() ([]core.NF, error) { return filterChain(3) }, cfg.options(core.DefaultOptions()))
		if err != nil {
			return nil, err
		}
		mq, err := platform.NewMultiQueue(p, workers)
		if err != nil {
			return nil, err
		}
		mq.SetBatchSize(cfg.Batch)
		start := time.Now()
		out, err := mq.Run(pkts)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		_ = p.Close()

		modeled := out.AggregateRateMpps()
		if workers == 1 {
			baseRate = modeled
		}
		pt := MultiQueuePoint{
			Workers:       workers,
			WallMillis:    float64(elapsed.Microseconds()) / 1000,
			RateMppsWall:  float64(len(pkts)) / elapsed.Seconds() / 1e6,
			RateMppsModel: modeled,
		}
		if baseRate > 0 {
			pt.Speedup = modeled / baseRate
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Format renders the sweep.
func (r *MultiQueueResult) Format() string {
	t := &tableWriter{}
	t.title(fmt.Sprintf("Extension: multi-queue scaling — wall-clock rate, %d flows / %d packets (BESS w/ SBox, 3 IPFilters)", r.Flows, r.Packets))
	t.row("workers", "wall ms", "wall Mpps", "model Mpps", "model speedup")
	for _, p := range r.Points {
		t.row(fmt.Sprintf("%d", p.Workers), f3(p.WallMillis), f3(p.RateMppsWall),
			f3(p.RateMppsModel), fmt.Sprintf("%.2fx", p.Speedup))
	}
	return t.String()
}
