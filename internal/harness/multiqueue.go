package harness

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/platform"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// MultiQueuePoint is one worker count's measurement. All columns are
// modeled tick counts or rates derived from them — never wall-clock
// time — so a given seed reproduces the table bit-identically on any
// host, loaded or idle.
type MultiQueuePoint struct {
	Workers int
	// TotalCycles is the modeled single-core occupancy of the whole
	// trace: the sum of per-packet bottleneck cycles.
	TotalCycles uint64
	// CriticalCycles is the modeled multi-core critical path: the
	// occupancy of the deepest queue, which every other worker waits
	// out. With perfectly balanced queues it approaches
	// TotalCycles/Workers.
	CriticalCycles uint64
	// RateMppsModel is the cost model's aggregate rate: per-core
	// modeled rate times the effective parallelism of the queue
	// partition. This is the simulator's throughput prediction for an
	// RSS deployment, independent of the host's core count.
	RateMppsModel float64
	// Speedup is the modeled rate relative to the 1-worker run.
	Speedup float64
}

// MultiQueueResult is an extension experiment: the paper's platforms
// pin the chain to one core (BESS) or one core per NF (ONVM); the
// multi-queue runner instead models an RSS NIC spreading flows across
// cores that share the engine's FID-sharded tables. The sweep reports
// how modeled throughput scales with workers on a subsequent-packet-
// dominated trace — the regime where per-packet work is small and
// shared-state contention, if any, dominates.
type MultiQueueResult struct {
	Packets int
	Flows   int
	Points  []MultiQueuePoint
}

// RunMultiQueue executes the worker sweep on a 3-IPFilter chain.
func RunMultiQueue(cfg Config) (*MultiQueueResult, error) {
	cfg = cfg.withDefaults(256)
	res := &MultiQueueResult{Flows: cfg.Flows}
	var baseRate float64
	for _, workers := range []int{1, 2, 4, 8} {
		// Fresh trace per run: platforms consume the packet buffers.
		tr, err := trace.Generate(trace.Config{
			Seed: cfg.Seed, Flows: cfg.Flows,
			MeanPackets: 64, UDPFraction: 1.0,
			Interleave: true,
		})
		if err != nil {
			return nil, err
		}
		pkts := tr.Packets()
		res.Packets = len(pkts)

		p, err := buildPlatform(PlatformBESS, func() ([]core.NF, error) { return filterChain(3) }, cfg.options(core.DefaultOptions()))
		if err != nil {
			return nil, err
		}
		mq, err := platform.NewMultiQueue(p, workers)
		if err != nil {
			return nil, err
		}
		mq.SetBatchSize(cfg.Batch)
		out, err := mq.Run(pkts)
		if err != nil {
			return nil, err
		}
		_ = p.Close()

		var total uint64
		for _, c := range out.Bottlenecks {
			total += c
		}
		// The deepest queue bounds the multi-core run; scale the total
		// occupancy by its share of the partition to get the modeled
		// critical path (the same parallelism model AggregateRateMpps
		// uses).
		sum, deepest := 0, 0
		for _, d := range out.QueueDepths {
			sum += d
			if d > deepest {
				deepest = d
			}
		}
		critical := total
		if sum > 0 {
			critical = total * uint64(deepest) / uint64(sum)
		}

		modeled := out.AggregateRateMpps()
		if workers == 1 {
			baseRate = modeled
		}
		pt := MultiQueuePoint{
			Workers:        workers,
			TotalCycles:    total,
			CriticalCycles: critical,
			RateMppsModel:  modeled,
		}
		if baseRate > 0 {
			pt.Speedup = modeled / baseRate
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Format renders the sweep.
func (r *MultiQueueResult) Format() string {
	t := &tableWriter{}
	t.title(fmt.Sprintf("Extension: multi-queue scaling — modeled ticks, %d flows / %d packets (BESS w/ SBox, 3 IPFilters)", r.Flows, r.Packets))
	t.row("workers", "total Mcycles", "critical Mcycles", "model Mpps", "model speedup")
	for _, p := range r.Points {
		t.row(fmt.Sprintf("%d", p.Workers),
			f3(float64(p.TotalCycles)/1e6), f3(float64(p.CriticalCycles)/1e6),
			f3(p.RateMppsModel), fmt.Sprintf("%.2fx", p.Speedup))
	}
	return t.String()
}
