package harness

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/cost"
	"github.com/fastpathnfv/speedybox/internal/onvm"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

// Fig8Point is one (platform, chain length) measurement.
type Fig8Point struct {
	Platform     string
	SBox         bool
	ChainLen     int
	LatencyMicro float64
	RateMpps     float64
}

// Fig8Result reproduces Figure 8: service chains of 1-9 IPFilters.
// OpenNetVM stops at length 5, limited by the testbed's core count
// (§VII-B2).
type Fig8Result struct {
	Points []Fig8Point
	// ONVMMaxLen is the core-budget chain limit actually applied.
	ONVMMaxLen int
}

// RunFig8 executes the experiment.
func RunFig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults(60)
	tr, err := trace.Generate(trace.Config{
		Seed: cfg.Seed, Flows: cfg.Flows,
		PayloadMin: 4, PayloadMax: 12,
		// DPDK-pktgen-style traffic (see fig4.go).
		UDPFraction: 1.0,
		Interleave:  true,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{ONVMMaxLen: onvm.MaxChainLen(cost.DefaultModel().ONVMCoreBudget)}
	for _, kind := range []PlatformKind{PlatformBESS, PlatformONVM} {
		maxLen := 9
		if kind == PlatformONVM {
			maxLen = res.ONVMMaxLen
		}
		for n := 1; n <= maxLen; n++ {
			n := n
			mk := func() ([]core.NF, error) { return filterChain(n) }
			for _, sbox := range []bool{false, true} {
				opts := cfg.options(core.BaselineOptions())
				if sbox {
					opts = cfg.options(core.DefaultOptions())
				}
				part, err := runVariant(kind, mk, opts, tr.Packets(), cfg.Batch)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, Fig8Point{
					Platform:     kind.String(),
					SBox:         sbox,
					ChainLen:     n,
					LatencyMicro: part.MeanSubLatencyMicros(),
					RateMpps:     part.SubRateMpps(),
				})
			}
		}
	}
	return res, nil
}

// Series extracts one curve (latency or rate by chain length).
func (r *Fig8Result) Series(platform string, sbox bool) []Fig8Point {
	var out []Fig8Point
	for _, p := range r.Points {
		if p.Platform == platform && p.SBox == sbox {
			out = append(out, p)
		}
	}
	return out
}

// Format renders both panels.
func (r *Fig8Result) Format() string {
	t := &tableWriter{}
	t.title(fmt.Sprintf("Figure 8: Chain length scaling (OpenNetVM capped at %d by core budget)", r.ONVMMaxLen))
	t.row("platform", "len", "latency (µs)", "rate (Mpps)")
	for _, p := range r.Points {
		name := p.Platform
		if p.SBox {
			name += " w/ SBox"
		}
		t.row(name, fmt.Sprintf("%d", p.ChainLen), f3(p.LatencyMicro), f3(p.RateMpps))
	}
	return t.String()
}
