// Package bess implements the BESS execution-platform model (paper
// §VI-A): the entire service chain runs as a single process on one
// dedicated core, run-to-completion — each packet traverses every
// module before the next packet starts. SpeedyBox on BESS adds a
// packet classifier task and a Global MAT executor module; the service
// graph has two branches, one for initial packets (the original chain)
// and one for subsequent packets (the Global MAT), with parallel
// state-function stages carved out to worker cores.
//
// Latency and throughput derive from the cost model:
//
//   - original path: latency = framework + Σ NF work + module
//     crossings; throughput = freq / latency (one core does it all).
//   - fast path: the main core pays the fast-path fixed work, header
//     application and batch dispatch; parallel SF stages add only
//     their critical path to latency, and throughput is bounded by
//     the busiest core (main or worker).
package bess

import (
	"fmt"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/cost"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/platform"
	"github.com/fastpathnfv/speedybox/internal/telemetry"
)

// Config configures a BESS platform instance.
type Config struct {
	// Chain is the service chain in order.
	Chain []core.NF
	// Options selects baseline vs SpeedyBox and the ablations.
	Options core.Options
}

// Platform is the BESS model.
type Platform struct {
	eng  *core.Engine
	name string
	// lat is the end-to-end latency histogram (modeled cycles), nil
	// when the engine has no telemetry hub.
	lat *telemetry.Histogram
}

var (
	_ platform.Platform     = (*Platform)(nil)
	_ platform.Reconfigurer = (*Platform)(nil)
)

// New builds a BESS platform. BESS has no chain-length limit: all NFs
// share one process (§VII-B2).
func New(cfg Config) (*Platform, error) {
	eng, err := core.NewEngine(cfg.Chain, cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("bess: %w", err)
	}
	p := &Platform{
		eng:  eng,
		name: platform.DisplayName("BESS", cfg.Options.EnableSpeedyBox),
	}
	if hub := eng.Telemetry(); hub != nil {
		p.lat = hub.Registry.Histogram(`speedybox_platform_latency_cycles{platform="bess"}`,
			"Per-packet end-to-end latency (modeled cycles) on the platform topology")
	}
	return p, nil
}

// Name implements platform.Platform.
func (p *Platform) Name() string { return p.name }

// Engine implements platform.Platform.
func (p *Platform) Engine() *core.Engine { return p.eng }

// Model implements platform.Platform.
func (p *Platform) Model() *cost.Model { return p.eng.Model() }

// Close implements platform.Platform; BESS holds no goroutines.
func (p *Platform) Close() error { return nil }

// Reconfigure implements platform.Reconfigurer. BESS runs the chain to
// completion on one core, so the engine's snapshot swap is the whole
// transition: the next packet's traversal loads the new run-to-completion
// vector, and in-flight batch workers fall back to the slow path when
// their rule caches miss on the bumped generation.
func (p *Platform) Reconfigure(plan core.ChainPlan) error { return p.eng.Reconfigure(plan) }

// Process implements platform.Platform.
func (p *Platform) Process(pkt *packet.Packet) (platform.Measurement, error) {
	res, err := p.eng.ProcessPacket(pkt)
	if err != nil {
		return platform.Measurement{}, err
	}
	m := p.measure(res)
	if p.lat != nil {
		p.lat.Record(m.LatencyCycles, uint32(res.FID))
	}
	return m, nil
}

// ProcessBatch implements platform.Platform: BESS run-to-completion
// over a packet vector. The single core still traverses the whole
// chain per packet, so the latency formulas are Process's unchanged;
// what the vector amortizes is the engine-side dispatch (batched
// classification, cached rule lookups, folded counters).
func (p *Platform) ProcessBatch(pkts []*packet.Packet, b *platform.Batch) ([]platform.Measurement, error) {
	results, err := p.eng.ProcessBatch(pkts, b.Core)
	if err != nil {
		return nil, err
	}
	ms := b.Measurements(len(results))
	for i, res := range results {
		ms[i] = p.measure(res)
		if p.lat != nil {
			p.lat.Record(ms[i].LatencyCycles, uint32(res.FID))
		}
	}
	return ms, nil
}

// measure applies the BESS latency/throughput formulas to one engine
// result (shared by Process and ProcessBatch).
func (p *Platform) measure(res *core.PacketResult) platform.Measurement {
	m := platform.Measurement{Result: res, WorkCycles: res.WorkCycles}
	model := p.eng.Model()

	switch res.Path {
	case core.PathSlow:
		lat := model.BESSFramework +
			res.Slow.ClassifierCycles +
			res.NFWork() +
			model.BESSPerModule*uint64(len(res.Slow.PerNF)) +
			res.Slow.ConsolidateCycles
		m.LatencyCycles = lat
		m.BottleneckCycles = lat // run-to-completion: one core pays it all
	case core.PathFast:
		f := res.Fast
		mainCore := model.BESSFastFramework + f.FixedCycles + f.HeaderCycles +
			f.DispatchCycles + f.ReconsolidateCycles
		if p.eng.Options().ParallelSF && f.BatchCount > 0 {
			// SF stages run on worker cores; latency adds their
			// critical path, throughput is bounded by the busiest
			// core.
			m.LatencyCycles = mainCore + f.SF.CriticalCycles
			worker := maxStageCritical(res)
			m.BottleneckCycles = maxU64(mainCore, worker)
		} else {
			// Sequential SF execution stays on the main core.
			m.LatencyCycles = mainCore + f.SF.TotalCycles
			m.BottleneckCycles = m.LatencyCycles
		}
	}
	return m
}

func maxStageCritical(res *core.PacketResult) uint64 {
	var worst uint64
	for _, st := range res.Fast.SF.Stages {
		if st.CriticalCycles > worst {
			worst = st.CriticalCycles
		}
	}
	return worst
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
