package bess

import (
	"testing"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/cost"
	"github.com/fastpathnfv/speedybox/internal/mat"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/sfunc"
)

// costedNF charges exactly `cycles` and records one state function of
// `sfCycles`, so the platform formulas can be verified to the cycle.
type costedNF struct {
	name     string
	cycles   uint64
	sfCycles uint64
}

func (c *costedNF) Name() string { return c.name }

func (c *costedNF) Process(ctx *core.Ctx, pkt *packet.Packet) (core.Verdict, error) {
	ctx.Charge(c.cycles)
	if err := ctx.AddHeaderAction(mat.Forward()); err != nil {
		return 0, err
	}
	sf := c.sfCycles
	if sf > 0 {
		if err := ctx.AddStateFunc(sfunc.Func{
			Name: "sf", Class: sfunc.ClassRead,
			Run: func(*packet.Packet) (uint64, error) { return sf, nil },
		}); err != nil {
			return 0, err
		}
	}
	return core.VerdictForward, nil
}

func udp(t *testing.T, seq int) *packet.Packet {
	t.Helper()
	return packet.MustBuild(packet.Spec{
		SrcIP: packet.IP4(10, 0, 0, 1), DstIP: packet.IP4(10, 0, 0, 2),
		SrcPort: 5000, DstPort: 53, Proto: packet.ProtoUDP,
		Payload: []byte{byte(seq)},
	})
}

// TestBaselineLatencyFormula pins the run-to-completion composition:
// latency = framework + Σ NF work + per-module crossings.
func TestBaselineLatencyFormula(t *testing.T) {
	m := cost.DefaultModel()
	chain := []core.NF{
		&costedNF{name: "a", cycles: 400},
		&costedNF{name: "b", cycles: 700},
	}
	p, err := New(Config{Chain: chain, Options: core.BaselineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	meas, err := p.Process(udp(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := m.BESSFramework + 400 + 700 + 2*m.BESSPerModule
	if meas.LatencyCycles != want {
		t.Errorf("latency = %d, want %d", meas.LatencyCycles, want)
	}
	if meas.BottleneckCycles != want {
		t.Errorf("bottleneck = %d, want run-to-completion %d", meas.BottleneckCycles, want)
	}
	if meas.WorkCycles != 1100 {
		t.Errorf("work = %d, want 1100 (no classifier in baseline)", meas.WorkCycles)
	}
}

// TestFastPathLatencyFormula pins the consolidated-path composition
// for a 2-SF chain: main core work + SF critical path; bottleneck is
// the busiest core.
func TestFastPathLatencyFormula(t *testing.T) {
	m := cost.DefaultModel()
	chain := []core.NF{
		&costedNF{name: "a", cycles: 400, sfCycles: 900},
		&costedNF{name: "b", cycles: 700, sfCycles: 500},
	}
	p, err := New(Config{Chain: chain, Options: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Process(udp(t, 1)); err != nil { // installs the rule
		t.Fatal(err)
	}
	meas, err := p.Process(udp(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if meas.Result.Path != core.PathFast {
		t.Fatalf("second packet path = %v", meas.Result.Path)
	}
	// Both SFs are ClassRead -> one parallel stage: critical = max +
	// fork/join; fixed = hash + base + event + lookup + 2 * perHA.
	fixed := m.HashFID + m.FastPathBase + m.EventCheck + m.GMATLookup + 2*m.FastPathPerHA
	dispatch := m.ForkJoin / 2 * 2
	sfCritical := uint64(900) + m.ForkJoin
	mainCore := m.BESSFastFramework + fixed + dispatch
	if want := mainCore + sfCritical; meas.LatencyCycles != want {
		t.Errorf("latency = %d, want %d", meas.LatencyCycles, want)
	}
	// Worker stage (1020) is below the main core here.
	if meas.BottleneckCycles != maxU64(mainCore, sfCritical) {
		t.Errorf("bottleneck = %d, want max(%d, %d)", meas.BottleneckCycles, mainCore, sfCritical)
	}
	// Work metric: fixed + SF critical path (dispatch excluded).
	if want := fixed + sfCritical; meas.WorkCycles != want {
		t.Errorf("work = %d, want %d", meas.WorkCycles, want)
	}
}

// TestSequentialSFFormula pins the HA-only ablation: SF total on the
// main core, no fork/join.
func TestSequentialSFFormula(t *testing.T) {
	m := cost.DefaultModel()
	chain := []core.NF{
		&costedNF{name: "a", cycles: 400, sfCycles: 900},
		&costedNF{name: "b", cycles: 700, sfCycles: 500},
	}
	p, err := New(Config{Chain: chain, Options: core.Options{
		EnableSpeedyBox: true, ConsolidateHeaders: true, ParallelSF: false,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Process(udp(t, 1)); err != nil {
		t.Fatal(err)
	}
	meas, err := p.Process(udp(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	fixed := m.HashFID + m.FastPathBase + m.EventCheck + m.GMATLookup + 2*m.FastPathPerHA
	want := m.BESSFastFramework + fixed + 900 + 500
	if meas.LatencyCycles != want {
		t.Errorf("latency = %d, want %d", meas.LatencyCycles, want)
	}
	if meas.BottleneckCycles != want {
		t.Errorf("bottleneck = %d, want single-core %d", meas.BottleneckCycles, want)
	}
}
