package bess

import (
	"bytes"
	"testing"

	"github.com/fastpathnfv/speedybox/internal/core"
	"github.com/fastpathnfv/speedybox/internal/nf/ipfilter"
	"github.com/fastpathnfv/speedybox/internal/nf/monitor"
	"github.com/fastpathnfv/speedybox/internal/nf/snort"
	"github.com/fastpathnfv/speedybox/internal/packet"
	"github.com/fastpathnfv/speedybox/internal/platform"
	"github.com/fastpathnfv/speedybox/internal/trace"
)

func filterChain(t *testing.T, n int) []core.NF {
	t.Helper()
	chain := make([]core.NF, n)
	for i := 0; i < n; i++ {
		f, err := ipfilter.New(ipfilter.Config{
			Name:  "fw" + string(rune('0'+i)),
			Rules: ipfilter.PadRules(nil, 100),
		})
		if err != nil {
			t.Fatal(err)
		}
		chain[i] = f
	}
	return chain
}

func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.Config{Seed: 21, Flows: 20, Interleave: true})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNames(t *testing.T) {
	base, err := New(Config{Chain: filterChain(t, 1), Options: core.BaselineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if base.Name() != "BESS" {
		t.Errorf("Name = %q", base.Name())
	}
	sbox, err := New(Config{Chain: filterChain(t, 1), Options: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer sbox.Close()
	if sbox.Name() != "BESS w/ SBox" {
		t.Errorf("Name = %q", sbox.Name())
	}
}

func TestLongChainsSupported(t *testing.T) {
	// BESS runs the whole chain in one process: no length limit
	// (§VII-B2).
	p, err := New(Config{Chain: filterChain(t, 9), Options: core.DefaultOptions()})
	if err != nil {
		t.Fatalf("9-NF BESS chain rejected: %v", err)
	}
	defer p.Close()
}

func TestRunOnTrace(t *testing.T) {
	p, err := New(Config{Chain: filterChain(t, 3), Options: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr := smallTrace(t)
	res, err := platform.Run(p, tr.Packets())
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != tr.Len() {
		t.Errorf("processed %d, trace has %d", res.Packets, tr.Len())
	}
	st := res.Stats
	if st.FastPath == 0 {
		t.Error("no packets took the fast path")
	}
	if st.Consolidations == 0 {
		t.Error("no consolidations happened")
	}
	if len(res.FlowCycles) == 0 {
		t.Error("no flow processing times recorded")
	}
	if res.RateMpps() <= 0 || res.MeanLatencyMicros() <= 0 {
		t.Error("degenerate rate/latency")
	}
}

func TestSpeedyBoxReducesSubsequentWork(t *testing.T) {
	// Figure 4's core shape on a 3-NF chain: with SpeedyBox,
	// subsequent packets cost fewer work cycles and less latency.
	run := func(opts core.Options) *platform.RunResult {
		p, err := New(Config{Chain: filterChain(t, 3), Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		res, err := platform.Run(p, smallTrace(t).Packets())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(core.BaselineOptions())
	sbox := run(core.DefaultOptions())
	if sbox.MeanWorkCycles() >= base.MeanWorkCycles() {
		t.Errorf("SBox mean work %f >= baseline %f", sbox.MeanWorkCycles(), base.MeanWorkCycles())
	}
	if sbox.MeanLatencyMicros() >= base.MeanLatencyMicros() {
		t.Errorf("SBox mean latency %f >= baseline %f", sbox.MeanLatencyMicros(), base.MeanLatencyMicros())
	}
}

func TestOutputEquivalenceOnTrace(t *testing.T) {
	// Invariant 1 at platform scale: byte-identical outputs and
	// identical drop decisions between baseline and SpeedyBox.
	mkChain := func() []core.NF {
		ids, err := snort.New("ids", snort.DefaultRules())
		if err != nil {
			t.Fatal(err)
		}
		mon, err := monitor.New("mon")
		if err != nil {
			t.Fatal(err)
		}
		fw, err := ipfilter.New(ipfilter.Config{Name: "fw", Rules: ipfilter.PadRules(nil, 50)})
		if err != nil {
			t.Fatal(err)
		}
		return []core.NF{fw, ids, mon}
	}
	tr := smallTrace(t)

	process := func(opts core.Options) []*packet.Packet {
		p, err := New(Config{Chain: mkChain(), Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		pkts := tr.Packets()
		for _, pkt := range pkts {
			if _, err := p.Process(pkt); err != nil {
				t.Fatal(err)
			}
		}
		return pkts
	}
	baseOut := process(core.BaselineOptions())
	sboxOut := process(core.DefaultOptions())
	for i := range baseOut {
		if baseOut[i].Dropped() != sboxOut[i].Dropped() {
			t.Fatalf("packet %d: drop decisions differ", i)
		}
		if !bytes.Equal(baseOut[i].Data(), sboxOut[i].Data()) {
			t.Fatalf("packet %d: outputs differ", i)
		}
	}
}

func TestSnortLogEquivalenceOnTrace(t *testing.T) {
	// §VII-C: Snort logs must be identical with and without SBox.
	tr, err := trace.Generate(trace.Config{Seed: 77, Flows: 50, AlertFraction: 0.3, LogFraction: 0.3, Interleave: true})
	if err != nil {
		t.Fatal(err)
	}
	runLogs := func(opts core.Options) []snort.LogEntry {
		ids, err := snort.New("ids", snort.DefaultRules())
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{Chain: []core.NF{ids}, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if _, err := platform.Run(p, tr.Packets()); err != nil {
			t.Fatal(err)
		}
		return ids.Logs()
	}
	base := runLogs(core.BaselineOptions())
	sbox := runLogs(core.DefaultOptions())
	if len(base) == 0 {
		t.Fatal("trace produced no IDS logs; test is vacuous")
	}
	if len(base) != len(sbox) {
		t.Fatalf("log counts differ: %d vs %d", len(base), len(sbox))
	}
	for i := range base {
		if base[i].RuleID != sbox[i].RuleID || base[i].Type != sbox[i].Type {
			t.Errorf("log %d differs: %+v vs %+v", i, base[i], sbox[i])
		}
	}
}

func TestMonitorCounterEquivalence(t *testing.T) {
	// §VII-C3: per-flow counters identical with and without SBox.
	tr := smallTrace(t)
	runTotals := func(opts core.Options) monitor.Counters {
		mon, err := monitor.New("mon")
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{Chain: []core.NF{mon}, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if _, err := platform.Run(p, tr.Packets()); err != nil {
			t.Fatal(err)
		}
		return mon.Totals()
	}
	base := runTotals(core.BaselineOptions())
	sbox := runTotals(core.DefaultOptions())
	if base != sbox {
		t.Errorf("monitor totals differ: %+v vs %+v", base, sbox)
	}
}

func TestEarlyDropSavesCycles(t *testing.T) {
	// Table III: {forward, forward, drop} chain; SpeedyBox drops
	// subsequent packets at the head.
	mkChain := func() []core.NF {
		var chain []core.NF
		for i := 0; i < 2; i++ {
			f, err := ipfilter.New(ipfilter.Config{Name: "fw" + string(rune('0'+i)), Rules: ipfilter.PadRules(nil, 100)})
			if err != nil {
				t.Fatal(err)
			}
			chain = append(chain, f)
		}
		deny, err := ipfilter.New(ipfilter.Config{Name: "fw2", Rules: ipfilter.PadRules(nil, 100), DefaultDeny: true})
		if err != nil {
			t.Fatal(err)
		}
		return append(chain, deny)
	}
	run := func(opts core.Options) float64 {
		p, err := New(Config{Chain: mkChain(), Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		res, err := platform.Run(p, smallTrace(t).Packets())
		if err != nil {
			t.Fatal(err)
		}
		if res.Drops != res.Packets {
			t.Fatalf("dropped %d of %d; all should drop", res.Drops, res.Packets)
		}
		return res.MeanWorkCycles()
	}
	base := run(core.BaselineOptions())
	sbox := run(core.DefaultOptions())
	saving := (base - sbox) / base
	if saving < 0.35 {
		t.Errorf("early drop saves %.1f%%, want substantial savings (paper: ~65%%)", saving*100)
	}
}
