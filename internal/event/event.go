// Package event implements SpeedyBox's Event Table (paper §V-C1).
//
// Observation 2 of the paper: some NFs update their header actions or
// state functions at runtime when internal state reaches a condition
// (a Maglev backend fails, a DoS counter crosses a threshold). The
// Event Table stores (condition, update) pairs registered by NFs via
// the register_event API. The Global MAT probes the table before
// applying a cached rule and again after state-function batches update
// state; when a condition fires, the update rewrites the owning NF's
// Local MAT entry and the flow's rule is reconsolidated, so subsequent
// packets immediately follow the new logic.
package event

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/fastpathnfv/speedybox/internal/errcode"
	"github.com/fastpathnfv/speedybox/internal/flow"
	"github.com/fastpathnfv/speedybox/internal/mat"
)

// MaxPerFlow caps how many events one flow may have registered at
// once. A condition storm (buggy or fault-injected NF re-registering
// on every packet) would otherwise grow the per-flow slice without
// bound and make every fast-path event check linear in the storm size.
const MaxPerFlow = 64

// ErrTooManyEvents reports a registration rejected by the per-flow cap.
var ErrTooManyEvents = errcode.Sentinel("event.registration_cap", "event: per-flow registration cap reached")

// ConditionFunc reports whether the event's condition currently holds
// for the flow. It corresponds to the paper's condition_handler: "a
// general callback handler that can be implemented with user-defined
// functions" (§III).
type ConditionFunc func(fid flow.FID) bool

// UpdateFunc rewrites the owning NF's Local MAT rule for the flow when
// the event fires. It corresponds to the update_action /
// update_function_handler arguments of register_event.
type UpdateFunc func(fid flow.FID, rule *mat.LocalRule)

// Event is one registered (condition → update) pair.
type Event struct {
	// NF names the registering network function; the update applies
	// to that NF's Local MAT.
	NF string
	// Condition is probed by the Event Table.
	Condition ConditionFunc
	// Update edits the NF's Local MAT rule for the flow.
	Update UpdateFunc
	// OneShot events are deregistered after firing once (e.g. a
	// Maglev reroute to the new backend). Recurring events stay
	// armed (e.g. a DoS counter that could cross further thresholds).
	OneShot bool
	// Epoch is the chain epoch under which the event was registered
	// (stamped by core.Ctx.RegisterEvent). Firings whose epoch differs
	// from the current chain's are discarded wholesale: the flow's rule
	// is from the same retired epoch, so the packet re-records on the
	// slow path and the replacement registrations carry the new epoch.
	Epoch uint64
}

// Validate reports whether the event is well-formed.
func (e Event) Validate() error {
	if e.NF == "" {
		return fmt.Errorf("event: empty NF name")
	}
	if e.Condition == nil {
		return fmt.Errorf("event: %s registered nil condition", e.NF)
	}
	if e.Update == nil {
		return fmt.Errorf("event: %s registered nil update", e.NF)
	}
	return nil
}

// Firing describes one triggered event, returned to the engine so it
// can apply the update and reconsolidate.
type Firing struct {
	FID   flow.FID
	Event *Event
}

// shardCount is the number of independently locked table shards,
// indexed by the FID's low bits (power of two). The fast path probes
// the Event Table twice per packet, so a single table lock would
// serialize every worker of the multi-queue platform.
const shardCount = 32

const shardMask = shardCount - 1

type tableShard struct {
	mu    sync.Mutex
	byFID map[flow.FID][]*Event
	_     [48]byte // pad to a 64-byte cache line (best effort)
}

// Table is the Event Table: per-FID registered events. It is safe for
// concurrent use and sharded by FID so disjoint flows never contend.
type Table struct {
	shards     [shardCount]tableShard
	fired      atomic.Uint64
	registered atomic.Uint64
	// regGen is the registration generation the batched data path
	// validates its "no events for this flow" cache against. Unlike
	// registered (a plain telemetry count), it starts in a per-instance
	// 2^32-wide band so values never coincide across Tables — a cache
	// carried across an engine rebuild must not validate against a dead
	// table's generation.
	regGen atomic.Uint64
	// journal, when set, observes successful registrations for
	// write-ahead logging: event closures cannot be serialized, so the
	// journal record marks the flow's rule non-restorable after a
	// crash (the flow re-records instead).
	journal atomic.Pointer[func(flow.FID)]
}

// SetJournal attaches (or, with nil, detaches) a callback invoked
// after every successful Register with the flow's FID. It runs under
// the flow's shard lock, so it observes registrations in table order
// and must not call back into the table.
func (t *Table) SetJournal(fn func(flow.FID)) {
	if fn == nil {
		t.journal.Store(nil)
		return
	}
	t.journal.Store(&fn)
}

// instanceGen hands each Table its own registration-generation band.
var instanceGen atomic.Uint64

// NewTable returns an empty Event Table.
func NewTable() *Table {
	t := &Table{}
	t.regGen.Store(instanceGen.Add(1) << 32)
	for i := range t.shards {
		t.shards[i].byFID = make(map[flow.FID][]*Event)
	}
	return t
}

func (t *Table) shardFor(fid flow.FID) *tableShard {
	return &t.shards[uint32(fid)&shardMask]
}

// Register adds an event for a flow (the register_event API, paper
// Figure 2).
func (t *Table) Register(fid flow.FID, e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	s := t.shardFor(fid)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.byFID[fid]) >= MaxPerFlow {
		return fmt.Errorf("%w: %v has %d", ErrTooManyEvents, fid, MaxPerFlow)
	}
	ev := e
	s.byFID[fid] = append(s.byFID[fid], &ev)
	t.registered.Add(1)
	t.regGen.Add(1)
	if j := t.journal.Load(); j != nil {
		(*j)(fid)
	}
	return nil
}

// Check probes all events registered for the flow and returns the ones
// whose conditions hold, removing one-shot firings from the table. The
// caller applies the updates and reconsolidates. Events fire in
// registration order. Conditions run under the flow's shard lock and
// must not call back into the Event Table.
func (t *Table) Check(fid flow.FID) []Firing {
	fired, _ := t.Probe(fid)
	return fired
}

// Probe is Check plus a report of whether the flow had any events
// registered at all. The batched data path uses registered=false to
// cache a "no events" verdict for the flow and skip both per-packet
// probes: the verdict stays valid while RegisteredTotal is unchanged,
// because a flow can only go from no-events to has-events through
// Register (one-shot firings and Remove only shrink the set, which the
// cache treats conservatively by keep probing).
func (t *Table) Probe(fid flow.FID) (fired []Firing, registered bool) {
	s := t.shardFor(fid)
	s.mu.Lock()
	defer s.mu.Unlock()
	events := s.byFID[fid]
	if len(events) == 0 {
		return nil, false
	}
	remaining := events[:0]
	for _, e := range events {
		if e.Condition(fid) {
			fired = append(fired, Firing{FID: fid, Event: e})
			t.fired.Add(1)
			if e.OneShot {
				continue // drop from table
			}
		}
		remaining = append(remaining, e)
	}
	if len(remaining) == 0 {
		delete(s.byFID, fid)
	} else {
		s.byFID[fid] = remaining
	}
	return fired, true
}

// Pending returns how many events are registered for the flow.
func (t *Table) Pending(fid flow.FID) int {
	s := t.shardFor(fid)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byFID[fid])
}

// FiredTotal returns how many firings the table has produced, a
// statistic the evaluation reports on.
func (t *Table) FiredTotal() uint64 {
	return t.fired.Load()
}

// RegisteredTotal returns how many events have ever been registered
// (the telemetry registrations counter; removals do not decrement it).
func (t *Table) RegisteredTotal() uint64 {
	return t.registered.Load()
}

// RegGen returns the registration generation: bumped on every Register
// and unique across Table instances, so a cached "no events" verdict
// stamped with one table's generation can never validate against
// another's.
func (t *Table) RegGen() uint64 {
	return t.regGen.Load()
}

// Remove drops all events for a flow (FIN/RST teardown).
func (t *Table) Remove(fid flow.FID) {
	s := t.shardFor(fid)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byFID, fid)
}

// Len returns the number of flows with registered events.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.byFID)
		s.mu.Unlock()
	}
	return n
}
