package event

import (
	"sync"
	"testing"

	"github.com/fastpathnfv/speedybox/internal/flow"
	"github.com/fastpathnfv/speedybox/internal/mat"
	"github.com/fastpathnfv/speedybox/internal/packet"
)

func always(flow.FID) bool              { return true }
func never(flow.FID) bool               { return false }
func noUpdate(flow.FID, *mat.LocalRule) {}

func TestRegisterValidation(t *testing.T) {
	tbl := NewTable()
	tests := []struct {
		name    string
		event   Event
		wantErr bool
	}{
		{"valid", Event{NF: "maglev", Condition: always, Update: noUpdate}, false},
		{"no nf", Event{Condition: always, Update: noUpdate}, true},
		{"nil condition", Event{NF: "x", Update: noUpdate}, true},
		{"nil update", Event{NF: "x", Condition: always}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tbl.Register(1, tt.event); (err != nil) != tt.wantErr {
				t.Errorf("Register = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCheckFiresOnCondition(t *testing.T) {
	tbl := NewTable()
	armed := false
	cond := func(flow.FID) bool { return armed }
	if err := tbl.Register(5, Event{NF: "dos", Condition: cond, Update: noUpdate}); err != nil {
		t.Fatal(err)
	}
	if fired := tbl.Check(5); len(fired) != 0 {
		t.Errorf("fired %d events with condition false", len(fired))
	}
	armed = true
	fired := tbl.Check(5)
	if len(fired) != 1 || fired[0].Event.NF != "dos" || fired[0].FID != 5 {
		t.Errorf("fired = %+v", fired)
	}
	if tbl.FiredTotal() != 1 {
		t.Errorf("FiredTotal = %d", tbl.FiredTotal())
	}
}

func TestCheckWrongFID(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Register(5, Event{NF: "x", Condition: always, Update: noUpdate}); err != nil {
		t.Fatal(err)
	}
	if fired := tbl.Check(6); len(fired) != 0 {
		t.Error("event fired for a different flow")
	}
}

func TestOneShotRemovedAfterFiring(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Register(1, Event{NF: "maglev", Condition: always, Update: noUpdate, OneShot: true}); err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.Check(1)); got != 1 {
		t.Fatalf("first Check fired %d", got)
	}
	if got := len(tbl.Check(1)); got != 0 {
		t.Errorf("one-shot fired again: %d", got)
	}
	if tbl.Pending(1) != 0 {
		t.Errorf("Pending = %d after one-shot", tbl.Pending(1))
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d, empty FID slot not reclaimed", tbl.Len())
	}
}

func TestRecurringStaysArmed(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Register(1, Event{NF: "dos", Condition: always, Update: noUpdate}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := len(tbl.Check(1)); got != 1 {
			t.Fatalf("check %d fired %d", i, got)
		}
	}
	if tbl.FiredTotal() != 3 {
		t.Errorf("FiredTotal = %d, want 3", tbl.FiredTotal())
	}
	if tbl.Pending(1) != 1 {
		t.Errorf("Pending = %d, want 1", tbl.Pending(1))
	}
}

func TestMultipleEventsFireInRegistrationOrder(t *testing.T) {
	tbl := NewTable()
	for _, nf := range []string{"first", "second", "third"} {
		if err := tbl.Register(2, Event{NF: nf, Condition: always, Update: noUpdate, OneShot: true}); err != nil {
			t.Fatal(err)
		}
	}
	// One never-firing event interleaved.
	if err := tbl.Register(2, Event{NF: "sleeper", Condition: never, Update: noUpdate}); err != nil {
		t.Fatal(err)
	}
	fired := tbl.Check(2)
	if len(fired) != 3 {
		t.Fatalf("fired %d, want 3", len(fired))
	}
	for i, want := range []string{"first", "second", "third"} {
		if fired[i].Event.NF != want {
			t.Errorf("fired[%d] = %s, want %s", i, fired[i].Event.NF, want)
		}
	}
	if tbl.Pending(2) != 1 {
		t.Errorf("Pending = %d, want sleeper still armed", tbl.Pending(2))
	}
}

func TestUpdateAppliesToLocalRule(t *testing.T) {
	// End-to-end through the Local MAT: the Maglev failover example
	// from §V-A — replace modify(DIP, origin) with modify(DIP, new).
	local := mat.NewLocal("maglev")
	fid := flow.FID(3)
	if err := local.AddHeaderAction(fid, mat.Modify(packet.FieldDstIP, []byte{10, 0, 0, 1})); err != nil {
		t.Fatal(err)
	}
	tbl := NewTable()
	err := tbl.Register(fid, Event{
		NF:        "maglev",
		Condition: always,
		OneShot:   true,
		Update: func(_ flow.FID, r *mat.LocalRule) {
			for i, a := range r.Actions {
				if a.Kind == mat.ActionModify && a.Field == packet.FieldDstIP {
					r.Actions[i] = mat.Modify(packet.FieldDstIP, []byte{10, 0, 0, 2})
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tbl.Check(fid) {
		local.Mutate(f.FID, func(r *mat.LocalRule) { f.Event.Update(f.FID, r) })
	}
	r, _ := local.Get(fid)
	if got := r.Actions[0].Value; got[3] != 2 {
		t.Errorf("DIP after event = %v, want .2 backend", got)
	}
}

func TestRemove(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Register(9, Event{NF: "x", Condition: always, Update: noUpdate}); err != nil {
		t.Fatal(err)
	}
	tbl.Remove(9)
	if len(tbl.Check(9)) != 0 {
		t.Error("removed event fired")
	}
	if tbl.Len() != 0 {
		t.Error("Len != 0 after Remove")
	}
}

func TestConcurrentCheckAndRegister(t *testing.T) {
	tbl := NewTable()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fid := flow.FID(g*100 + i)
				if err := tbl.Register(fid, Event{NF: "x", Condition: always, Update: noUpdate, OneShot: true}); err != nil {
					t.Errorf("Register: %v", err)
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tbl.Check(flow.FID(g*100 + i))
			}
		}(g)
	}
	wg.Wait()
	// Drain: every registered event fires exactly once overall.
	for fid := flow.FID(0); fid < 400; fid++ {
		tbl.Check(fid)
	}
	if got := tbl.FiredTotal(); got != 400 {
		t.Errorf("FiredTotal = %d, want exactly 400", got)
	}
}
