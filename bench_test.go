package speedybox_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	speedybox "github.com/fastpathnfv/speedybox"
	"github.com/fastpathnfv/speedybox/internal/harness"
)

// Benchmarks: one per table/figure of the paper's evaluation, each
// running the corresponding harness experiment and reporting the
// headline modeled metric alongside Go-level timings, plus
// micro-benchmarks of the hot code paths themselves.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem

func benchCfg() harness.Config { return harness.Config{Seed: 1, Flows: 30} }

// BenchmarkFig4HeaderActionConsolidation regenerates Figure 4:
// CPU cycles per packet vs number of header actions.
func BenchmarkFig4HeaderActionConsolidation(b *testing.B) {
	var last *harness.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Platform == "BESS" {
			b.ReportMetric(row.SubSaving(), fmt.Sprintf("saving%%@%dHA", row.NumHA))
		}
	}
}

// BenchmarkTable3EarlyDrop regenerates Table III: early packet drop.
func BenchmarkTable3EarlyDrop(b *testing.B) {
	var last *harness.Table3Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Platform == "BESS" {
			b.ReportMetric(row.Saving(), "drop-saving%")
			b.ReportMetric(row.SBoxAggregate, "sbox-cycles/pkt")
		}
	}
}

// BenchmarkFig5SFParallelism regenerates Figure 5: state-function
// parallelism rate and latency.
func BenchmarkFig5SFParallelism(b *testing.B) {
	var last *harness.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.BESSSpeedupAt3SF(), "bess-rate-x@3SF")
	b.ReportMetric(last.BESSLatencyReductionAt3SF(), "bess-lat-cut%@3SF")
}

// BenchmarkFig6SnortMonitor regenerates Figure 6.
func BenchmarkFig6SnortMonitor(b *testing.B) {
	var last *harness.Fig6Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Platform == "BESS" {
			b.ReportMetric(row.WorkReduction(), "cycle-cut%")
			b.ReportMetric(row.RateImprovement(), "rate-gain%")
		}
	}
}

// BenchmarkFig7LatencyBreakdown regenerates Figure 7: ablation shares.
func BenchmarkFig7LatencyBreakdown(b *testing.B) {
	var last *harness.Fig7Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		ha, sf := row.Shares()
		if row.Platform == "BESS" {
			b.ReportMetric(row.TotalReduction(), "lat-cut%")
			b.ReportMetric(ha, "ha-share%")
			b.ReportMetric(sf, "sf-share%")
		}
	}
}

// BenchmarkFig8ChainLength regenerates Figure 8: 1-9 NF chains.
func BenchmarkFig8ChainLength(b *testing.B) {
	var last *harness.Fig8Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	sbox := last.Series("BESS", true)
	orig := last.Series("BESS", false)
	b.ReportMetric(orig[8].LatencyMicro, "bess-orig-us@9")
	b.ReportMetric(sbox[8].LatencyMicro, "bess-sbox-us@9")
}

// BenchmarkFig9Chain1 and BenchmarkFig9Chain2 regenerate Figure 9:
// flow-processing-time CDFs on the real-world chains.
func BenchmarkFig9Chain1(b *testing.B) { benchFig9(b, 1) }

// BenchmarkFig9Chain2 is the second real-world chain.
func BenchmarkFig9Chain2(b *testing.B) { benchFig9(b, 2) }

func benchFig9(b *testing.B, chain int) {
	b.Helper()
	var last *harness.Fig9Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig9(harness.Config{Seed: 1, Flows: 60}, chain)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Platform == "BESS" {
			b.ReportMetric(row.P50Reduction(), "p50-cut%")
		}
	}
}

// BenchmarkTable2Equivalence runs the §VII-C equivalence suite (the
// paper's correctness tables).
func BenchmarkEquivalenceSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunEquivalence(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllPassed() {
			b.Fatalf("equivalence failed:\n%s", res.Format())
		}
	}
}

// ---- Micro-benchmarks of the hot paths (real Go time, not modeled
// cycles) ----

func benchChain(b *testing.B) []speedybox.NF {
	b.Helper()
	fw, err := speedybox.NewIPFilter(speedybox.IPFilterConfig{
		Name: "fw", Rules: speedybox.PadIPFilterRules(nil, 100),
	})
	if err != nil {
		b.Fatal(err)
	}
	ids, err := speedybox.NewSnort("ids", speedybox.DefaultSnortRules())
	if err != nil {
		b.Fatal(err)
	}
	mon, err := speedybox.NewMonitor("mon")
	if err != nil {
		b.Fatal(err)
	}
	return []speedybox.NF{fw, ids, mon}
}

// BenchmarkFastPathPerPacket measures the Go-level cost of one
// fast-path packet through a 3-NF chain on BESS.
func BenchmarkFastPathPerPacket(b *testing.B) {
	p, err := speedybox.NewBESS(benchChain(b), speedybox.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	mk := func(i int) *speedybox.Packet {
		pkt, err := speedybox.BuildPacket(speedybox.PacketSpec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{20, 0, 0, 1},
			SrcPort: 7777, DstPort: 80, Proto: 17, // UDP: no handshake
			Payload: []byte("bench payload bytes"),
		})
		if err != nil {
			b.Fatal(err)
		}
		return pkt
	}
	// Install the rule with one initial packet.
	if _, err := p.Process(mk(0)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Process(mk(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastPathPerPacketTelemetry is BenchmarkFastPathPerPacket
// with a telemetry hub attached: the per-packet delta is the cost of
// live instrumentation (designed to be one atomic add per packet, zero
// extra allocations).
func BenchmarkFastPathPerPacketTelemetry(b *testing.B) {
	opts := speedybox.DefaultOptions()
	opts.Telemetry = speedybox.NewTelemetry()
	p, err := speedybox.NewBESS(benchChain(b), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	mk := func() *speedybox.Packet {
		pkt, err := speedybox.BuildPacket(speedybox.PacketSpec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{20, 0, 0, 1},
			SrcPort: 7777, DstPort: 80, Proto: 17,
			Payload: []byte("bench payload bytes"),
		})
		if err != nil {
			b.Fatal(err)
		}
		return pkt
	}
	if _, err := p.Process(mk()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Process(mk()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlowPathPerPacket measures the original-chain traversal.
func BenchmarkSlowPathPerPacket(b *testing.B) {
	p, err := speedybox.NewBESS(benchChain(b), speedybox.BaselineOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := speedybox.BuildPacket(speedybox.PacketSpec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{20, 0, 0, 1},
			SrcPort: 7777, DstPort: 80, Proto: 17,
			Payload: []byte("bench payload bytes"),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Process(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkONVMPipelinePerPacket measures a packet through the real
// goroutine pipeline.
func BenchmarkONVMPipelinePerPacket(b *testing.B) {
	p, err := speedybox.NewONVM(benchChain(b), speedybox.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := speedybox.BuildPacket(speedybox.PacketSpec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{20, 0, 0, 1},
			SrcPort: 7777, DstPort: 80, Proto: 17,
			Payload: []byte("bench payload"),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Process(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// mqChain is the multi-queue benchmark chain: three IPFilters with
// forward-only ACLs, so fast-path packets touch no shared NF state and
// the measurement isolates the engine's sharded data path.
func mqChain(b *testing.B) []speedybox.NF {
	b.Helper()
	chain := make([]speedybox.NF, 3)
	for i := range chain {
		f, err := speedybox.NewIPFilter(speedybox.IPFilterConfig{
			Name: fmt.Sprintf("fw%d", i+1), Rules: speedybox.PadIPFilterRules(nil, 100),
		})
		if err != nil {
			b.Fatal(err)
		}
		chain[i] = f
	}
	return chain
}

// mqTrace builds a subsequent-packet-dominated UDP trace: 256 flows of
// 64 data packets each (no handshakes, rules installed by the first
// packet of each flow).
func mqTrace(b *testing.B) []*speedybox.Packet {
	b.Helper()
	tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{
		Seed: 1, Flows: 256, MeanPackets: 64, SigmaPackets: 0.01,
		UDPFraction: 1.0, Interleave: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tr.Packets()
}

// BenchmarkMultiQueue measures the RSS-style multi-queue runner at
// 1/2/4/8 workers over one engine's sharded state. "wall-Mpps" is real
// wall-clock throughput (it only scales with workers when the host has
// the cores); "model-Mpps" is the cost model's aggregate rate for the
// queue partition, the simulator's prediction for a real RSS NIC.
func BenchmarkMultiQueue(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p, err := speedybox.NewBESS(mqChain(b), speedybox.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			mq, err := speedybox.NewMultiQueue(p, workers)
			if err != nil {
				b.Fatal(err)
			}
			// Prime: the first pass records and consolidates every
			// flow; timed passes replay the same flows fast-path.
			if _, err := mq.Run(mqTrace(b)); err != nil {
				b.Fatal(err)
			}
			var (
				pkts int
				last *speedybox.RunResult
			)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				trace := mqTrace(b)
				b.StartTimer()
				out, err := mq.Run(trace)
				if err != nil {
					b.Fatal(err)
				}
				pkts += out.Packets
				last = out
			}
			b.StopTimer()
			b.ReportMetric(float64(pkts)/b.Elapsed().Seconds()/1e6, "wall-Mpps")
			b.ReportMetric(last.AggregateRateMpps(), "model-Mpps")
		})
	}
}

// fastTrace builds the batched-fast-path benchmark trace: 4 UDP flows
// of ~512 data packets, interleaved — the "handful of flows per vector"
// shape the per-worker 4-way rule cache is sized for. Forward-only
// IPFilters never rewrite the packets, so the same descriptors replay
// indefinitely.
func fastTrace(b *testing.B) []*speedybox.Packet {
	b.Helper()
	tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{
		Seed: 1, Flows: 4, MeanPackets: 512, SigmaPackets: 0.01,
		UDPFraction: 1.0, Interleave: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tr.Packets()
}

// BenchmarkFastPath is the scalar half of the batching comparison: one
// Process call per packet of a pre-built, replayable trace on the
// dispatch-dominated 3-IPFilter chain (no regex, no payload work — the
// measurement isolates classification, rule lookup and accounting).
// b.N counts packets, so ns/op and allocs/op read per packet.
func BenchmarkFastPath(b *testing.B) {
	p, err := speedybox.NewBESS(mqChain(b), speedybox.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	pkts := fastTrace(b)
	// Prime: record and consolidate every flow; timed replays then run
	// pure fast path.
	if _, err := speedybox.Run(p, pkts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Process(pkts[i%len(pkts)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "pkts-Mpps")
}

// BenchmarkFastPathBatch is the batched half: the identical trace in
// 32-packet vectors through ProcessBatch with one per-worker Batch.
// b.N still counts packets (the loop advances by vector length), so the
// figures compare directly with BenchmarkFastPath; the acceptance bar
// is >=2x packets/sec and amortized allocs < 1/packet.
func BenchmarkFastPathBatch(b *testing.B) {
	p, err := speedybox.NewBESS(mqChain(b), speedybox.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	pkts := fastTrace(b)
	if _, err := speedybox.Run(p, pkts); err != nil {
		b.Fatal(err)
	}
	const vec = 32
	vecs := make([][]*speedybox.Packet, 0, len(pkts)/vec)
	for off := 0; off+vec <= len(pkts); off += vec {
		vecs = append(vecs, pkts[off:off+vec])
	}
	bat := speedybox.NewBatch(vec)
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; {
		v := vecs[i%len(vecs)]
		i++
		if _, err := p.ProcessBatch(v, bat); err != nil {
			b.Fatal(err)
		}
		n += len(v)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "pkts-Mpps")
}

// BenchmarkFastPathBatchWAL is BenchmarkFastPathBatch with a WAL
// attached before warmup: every install journals, then the steady-state
// batched fast path runs with durability on. The journal only sees
// control-plane mutations, so per-packet cost and allocations must stay
// at the non-WAL level (the benchgate asserts <=1 alloc/packet).
func BenchmarkFastPathBatchWAL(b *testing.B) {
	p, err := speedybox.NewBESS(mqChain(b), speedybox.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	p.Engine().AttachWAL(speedybox.NewWAL(speedybox.WALOptions{}))
	pkts := fastTrace(b)
	if _, err := speedybox.Run(p, pkts); err != nil {
		b.Fatal(err)
	}
	if p.Engine().WAL().Seq() == 0 {
		b.Fatal("warmup journaled nothing")
	}
	const vec = 32
	vecs := make([][]*speedybox.Packet, 0, len(pkts)/vec)
	for off := 0; off+vec <= len(pkts); off += vec {
		vecs = append(vecs, pkts[off:off+vec])
	}
	bat := speedybox.NewBatch(vec)
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; {
		v := vecs[i%len(vecs)]
		i++
		if _, err := p.ProcessBatch(v, bat); err != nil {
			b.Fatal(err)
		}
		n += len(v)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "pkts-Mpps")
}

// BenchmarkPooledReplay measures a whole-trace replay cycle with pooled
// descriptors: draw the trace from the pool, run it batched, return
// every descriptor via RunBatch. Steady state allocates no packet
// descriptors — remaining allocs/op are the run's aggregation slices.
func BenchmarkPooledReplay(b *testing.B) {
	p, err := speedybox.NewBESS(mqChain(b), speedybox.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{
		Seed: 1, Flows: 4, MeanPackets: 512, SigmaPackets: 0.01,
		UDPFraction: 1.0, Interleave: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	pool := speedybox.NewPacketPool()
	buf := make([]*speedybox.Packet, 0, tr.Len())
	if _, err := speedybox.RunBatch(p, tr.PacketsPooled(pool, buf), 32, pool); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkts := tr.PacketsPooled(pool, buf)
		if _, err := speedybox.RunBatch(p, pkts, 32, pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineParallel drives one BESS platform's fast path from
// GOMAXPROCS goroutines via RunParallel, each goroutine on its own
// flow — the per-packet figure under concurrency, comparable with
// BenchmarkFastPathPerPacket's serial figure.
func BenchmarkEngineParallel(b *testing.B) {
	p, err := speedybox.NewBESS(mqChain(b), speedybox.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	var nextPort atomic.Uint32
	nextPort.Store(20000)
	b.RunParallel(func(pb *testing.PB) {
		port := uint16(nextPort.Add(1))
		mk := func() *speedybox.Packet {
			pkt, err := speedybox.BuildPacket(speedybox.PacketSpec{
				SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{20, 0, 0, 1},
				SrcPort: port, DstPort: 80, Proto: 17,
				Payload: []byte("bench payload bytes"),
			})
			if err != nil {
				b.Fatal(err)
			}
			return pkt
		}
		// Install this goroutine's rule.
		if _, err := p.Process(mk()); err != nil {
			b.Fatal(err)
		}
		for pb.Next() {
			if _, err := p.Process(mk()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTopoFastPathBatch measures the multi-chain topology fast
// path: packets are classified per packet (policy match + tenant
// stamp) and drained through their chain's engine in 32-packet
// same-chain vectors, the way Topology.RunBatch and the fair-share
// MultiQueue feed chains. b.N counts packets; the benchgate asserts
// the steady state stays at <=1 alloc/packet, so adding the topology
// layer must not cost the single-chain zero-alloc property.
func BenchmarkTopoFastPathBatch(b *testing.B) {
	spec := &speedybox.TopologySpec{
		Name: "bench",
		Chains: []speedybox.TopologyChainSpec{
			{Name: "a", NFs: []speedybox.NFSpec{
				{Type: "ipfilter", ACLSize: 100},
				{Type: "ipfilter", ACLSize: 100},
				{Type: "ipfilter", ACLSize: 100},
			}},
			{Name: "b", NFs: []speedybox.NFSpec{
				{Type: "ipfilter", ACLSize: 100},
				{Type: "ipfilter", ACLSize: 100},
				{Type: "ipfilter", ACLSize: 100},
			}},
		},
		Policies: []speedybox.TopologyPolicySpec{
			{Chain: "a", Tenant: 1, DstPortMin: 80},
			{Chain: "b", Tenant: 2, DstPortMin: 9000},
		},
		Tenants: []speedybox.TenantSpec{{ID: 1}, {ID: 2}},
	}
	tp, err := speedybox.BuildTopology(spec, speedybox.TopologyBuildConfig{
		Options: speedybox.DefaultOptions(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tp.Close()

	// Two interleaved UDP services, one per chain.
	var pkts []*speedybox.Packet
	for i, port := range []uint16{80, 9000} {
		tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{
			Seed: int64(i + 1), Flows: 4, MeanPackets: 512, SigmaPackets: 0.01,
			UDPFraction: 1.0, DstPort: port, Interleave: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		pkts = append(pkts, tr.Packets()...)
	}
	// Prime: record and consolidate every flow through the topology.
	if _, err := tp.RunBatch(pkts, 32); err != nil {
		b.Fatal(err)
	}
	// Pre-split into maximal same-chain vectors, as RunBatch does.
	const vec = 32
	type chainVec struct {
		chain int
		pkts  []*speedybox.Packet
	}
	var vecs []chainVec
	for off := 0; off < len(pkts); {
		chain := tp.Route(pkts[off])
		end := off + 1
		for end < len(pkts) && end-off < vec && tp.Route(pkts[end]) == chain {
			end++
		}
		vecs = append(vecs, chainVec{chain: chain, pkts: pkts[off:end]})
		off = end
	}
	bats := make([]*speedybox.Batch, tp.NumChains())
	for i := range bats {
		bats[i] = speedybox.NewBatch(vec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; {
		v := vecs[i%len(vecs)]
		i++
		// Classify per packet in the timed region — the dispatcher does.
		for _, pkt := range v.pkts {
			tp.Route(pkt)
		}
		if _, err := tp.Chain(v.chain).Platform.ProcessBatch(v.pkts, bats[v.chain]); err != nil {
			b.Fatal(err)
		}
		n += len(v.pkts)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "pkts-Mpps")
}

// BenchmarkClusterFastPathBatch measures the clustered fast path in
// steady state: a 2-instance fleet behind the consistent-hash steerer,
// fed 32-packet vectors that ProcessRuns splits into same-instance
// runs. Steering (route + view recheck + instance RLock) is in the
// timed region — that is the cluster's per-packet overhead versus
// BenchmarkFastPathBatch. Gated at 0 allocs/packet in CI: one
// generation-banded Batch serves every instance, so the migration
// machinery must cost nothing when no rebalance is in flight.
func BenchmarkClusterFastPathBatch(b *testing.B) {
	cl, err := speedybox.NewCluster(speedybox.ClusterConfig{
		Chain: mqChain(b), Options: speedybox.DefaultOptions(), Instances: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{
		Seed: 1, Flows: 8, MeanPackets: 256, SigmaPackets: 0.01,
		UDPFraction: 1.0, Interleave: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	pkts := tr.Packets()
	// Prime: record and consolidate every flow on its home instance;
	// timed replays then run pure fast path.
	if _, err := cl.RunBatch(pkts, 32, nil); err != nil {
		b.Fatal(err)
	}
	spread := 0
	for _, in := range cl.Instances() {
		if in.Flows > 0 {
			spread++
		}
	}
	if spread < 2 {
		b.Fatalf("trace landed on %d instance(s); steering not exercised", spread)
	}
	const vec = 32
	vecs := make([][]*speedybox.Packet, 0, len(pkts)/vec)
	for off := 0; off+vec <= len(pkts); off += vec {
		vecs = append(vecs, pkts[off:off+vec])
	}
	bat := speedybox.NewBatch(vec)
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; {
		v := vecs[i%len(vecs)]
		i++
		if err := cl.ProcessRuns(v, vec, bat, nil); err != nil {
			b.Fatal(err)
		}
		n += len(v)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "pkts-Mpps")
}

// BenchmarkTraceGeneration measures synthetic trace synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := speedybox.GenerateTrace(speedybox.TraceConfig{Seed: int64(i), Flows: 100, Interleave: true}); err != nil {
			b.Fatal(err)
		}
	}
}
