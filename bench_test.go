package speedybox_test

import (
	"fmt"
	"testing"

	speedybox "github.com/fastpathnfv/speedybox"
	"github.com/fastpathnfv/speedybox/internal/harness"
)

// Benchmarks: one per table/figure of the paper's evaluation, each
// running the corresponding harness experiment and reporting the
// headline modeled metric alongside Go-level timings, plus
// micro-benchmarks of the hot code paths themselves.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem

func benchCfg() harness.Config { return harness.Config{Seed: 1, Flows: 30} }

// BenchmarkFig4HeaderActionConsolidation regenerates Figure 4:
// CPU cycles per packet vs number of header actions.
func BenchmarkFig4HeaderActionConsolidation(b *testing.B) {
	var last *harness.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Platform == "BESS" {
			b.ReportMetric(row.SubSaving(), fmt.Sprintf("saving%%@%dHA", row.NumHA))
		}
	}
}

// BenchmarkTable3EarlyDrop regenerates Table III: early packet drop.
func BenchmarkTable3EarlyDrop(b *testing.B) {
	var last *harness.Table3Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Platform == "BESS" {
			b.ReportMetric(row.Saving(), "drop-saving%")
			b.ReportMetric(row.SBoxAggregate, "sbox-cycles/pkt")
		}
	}
}

// BenchmarkFig5SFParallelism regenerates Figure 5: state-function
// parallelism rate and latency.
func BenchmarkFig5SFParallelism(b *testing.B) {
	var last *harness.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.BESSSpeedupAt3SF(), "bess-rate-x@3SF")
	b.ReportMetric(last.BESSLatencyReductionAt3SF(), "bess-lat-cut%@3SF")
}

// BenchmarkFig6SnortMonitor regenerates Figure 6.
func BenchmarkFig6SnortMonitor(b *testing.B) {
	var last *harness.Fig6Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Platform == "BESS" {
			b.ReportMetric(row.WorkReduction(), "cycle-cut%")
			b.ReportMetric(row.RateImprovement(), "rate-gain%")
		}
	}
}

// BenchmarkFig7LatencyBreakdown regenerates Figure 7: ablation shares.
func BenchmarkFig7LatencyBreakdown(b *testing.B) {
	var last *harness.Fig7Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		ha, sf := row.Shares()
		if row.Platform == "BESS" {
			b.ReportMetric(row.TotalReduction(), "lat-cut%")
			b.ReportMetric(ha, "ha-share%")
			b.ReportMetric(sf, "sf-share%")
		}
	}
}

// BenchmarkFig8ChainLength regenerates Figure 8: 1-9 NF chains.
func BenchmarkFig8ChainLength(b *testing.B) {
	var last *harness.Fig8Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	sbox := last.Series("BESS", true)
	orig := last.Series("BESS", false)
	b.ReportMetric(orig[8].LatencyMicro, "bess-orig-us@9")
	b.ReportMetric(sbox[8].LatencyMicro, "bess-sbox-us@9")
}

// BenchmarkFig9Chain1 and BenchmarkFig9Chain2 regenerate Figure 9:
// flow-processing-time CDFs on the real-world chains.
func BenchmarkFig9Chain1(b *testing.B) { benchFig9(b, 1) }

// BenchmarkFig9Chain2 is the second real-world chain.
func BenchmarkFig9Chain2(b *testing.B) { benchFig9(b, 2) }

func benchFig9(b *testing.B, chain int) {
	b.Helper()
	var last *harness.Fig9Result
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig9(harness.Config{Seed: 1, Flows: 60}, chain)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Platform == "BESS" {
			b.ReportMetric(row.P50Reduction(), "p50-cut%")
		}
	}
}

// BenchmarkTable2Equivalence runs the §VII-C equivalence suite (the
// paper's correctness tables).
func BenchmarkEquivalenceSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunEquivalence(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllPassed() {
			b.Fatalf("equivalence failed:\n%s", res.Format())
		}
	}
}

// ---- Micro-benchmarks of the hot paths (real Go time, not modeled
// cycles) ----

func benchChain(b *testing.B) []speedybox.NF {
	b.Helper()
	fw, err := speedybox.NewIPFilter(speedybox.IPFilterConfig{
		Name: "fw", Rules: speedybox.PadIPFilterRules(nil, 100),
	})
	if err != nil {
		b.Fatal(err)
	}
	ids, err := speedybox.NewSnort("ids", speedybox.DefaultSnortRules())
	if err != nil {
		b.Fatal(err)
	}
	mon, err := speedybox.NewMonitor("mon")
	if err != nil {
		b.Fatal(err)
	}
	return []speedybox.NF{fw, ids, mon}
}

// BenchmarkFastPathPerPacket measures the Go-level cost of one
// fast-path packet through a 3-NF chain on BESS.
func BenchmarkFastPathPerPacket(b *testing.B) {
	p, err := speedybox.NewBESS(benchChain(b), speedybox.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	mk := func(i int) *speedybox.Packet {
		pkt, err := speedybox.BuildPacket(speedybox.PacketSpec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{20, 0, 0, 1},
			SrcPort: 7777, DstPort: 80, Proto: 17, // UDP: no handshake
			Payload: []byte("bench payload bytes"),
		})
		if err != nil {
			b.Fatal(err)
		}
		return pkt
	}
	// Install the rule with one initial packet.
	if _, err := p.Process(mk(0)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Process(mk(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlowPathPerPacket measures the original-chain traversal.
func BenchmarkSlowPathPerPacket(b *testing.B) {
	p, err := speedybox.NewBESS(benchChain(b), speedybox.BaselineOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := speedybox.BuildPacket(speedybox.PacketSpec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{20, 0, 0, 1},
			SrcPort: 7777, DstPort: 80, Proto: 17,
			Payload: []byte("bench payload bytes"),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Process(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkONVMPipelinePerPacket measures a packet through the real
// goroutine pipeline.
func BenchmarkONVMPipelinePerPacket(b *testing.B) {
	p, err := speedybox.NewONVM(benchChain(b), speedybox.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := speedybox.BuildPacket(speedybox.PacketSpec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{20, 0, 0, 1},
			SrcPort: 7777, DstPort: 80, Proto: 17,
			Payload: []byte("bench payload"),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Process(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures synthetic trace synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := speedybox.GenerateTrace(speedybox.TraceConfig{Seed: int64(i), Flows: 100, Interleave: true}); err != nil {
			b.Fatal(err)
		}
	}
}
