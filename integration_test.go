package speedybox_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	speedybox "github.com/fastpathnfv/speedybox"
)

// randomChain draws a random service chain from the NF pool. The VPN
// gateways are added as a matched encap/decap pair so every chain is
// functionally closed (decap without encap would reject traffic).
func randomChain(t *testing.T, rng *rand.Rand, maxLen int) []speedybox.NF {
	t.Helper()
	pool := []func(i int) (speedybox.NF, error){
		func(i int) (speedybox.NF, error) {
			return speedybox.NewMonitor(fmt.Sprintf("mon%d", i))
		},
		func(i int) (speedybox.NF, error) {
			return speedybox.NewIPFilter(speedybox.IPFilterConfig{
				Name:  fmt.Sprintf("fw%d", i),
				Rules: speedybox.PadIPFilterRules(nil, 20+rng.Intn(80)),
			})
		},
		func(i int) (speedybox.NF, error) {
			return speedybox.NewSnort(fmt.Sprintf("ids%d", i), speedybox.DefaultSnortRules())
		},
		func(i int) (speedybox.NF, error) {
			return speedybox.NewMaglev(speedybox.MaglevConfig{
				Name: fmt.Sprintf("lb%d", i),
				Backends: []speedybox.MaglevBackend{
					{Name: "a", IP: [4]byte{172, 16, 0, 1}, Port: 80},
					{Name: "b", IP: [4]byte{172, 16, 0, 2}, Port: 80},
				},
			})
		},
		func(i int) (speedybox.NF, error) {
			return speedybox.NewMazuNAT(speedybox.MazuNATConfig{
				Name:           fmt.Sprintf("nat%d", i),
				InternalPrefix: [4]byte{10, 0, 0, 0}, InternalBits: 8,
				ExternalIP: [4]byte{198, 51, 100, byte(1 + i)},
			})
		},
		func(i int) (speedybox.NF, error) {
			return speedybox.NewDoSDefender(speedybox.DoSDefenderConfig{
				Name: fmt.Sprintf("dos%d", i), SYNThreshold: 1000,
			})
		},
	}
	n := 1 + rng.Intn(maxLen)
	chain := make([]speedybox.NF, 0, n+2)
	for i := 0; i < n; i++ {
		nf, err := pool[rng.Intn(len(pool))](len(chain))
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, nf)
	}
	if rng.Intn(3) == 0 && len(chain)+2 <= 5 {
		enc, err := speedybox.NewVPNGateway(speedybox.VPNConfig{
			Name: fmt.Sprintf("vpnE%d", len(chain)), Mode: speedybox.VPNEncap,
		})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := speedybox.NewVPNGateway(speedybox.VPNConfig{
			Name: fmt.Sprintf("vpnD%d", len(chain)+1), Mode: speedybox.VPNDecap,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Encap first, decap last: the inner NFs see AH traffic.
		chain = append([]speedybox.NF{enc}, append(chain, dec)...)
	}
	return chain
}

type runOutput struct {
	drops []bool
	outs  [][]byte
}

func runThrough(t *testing.T, p speedybox.Platform, pkts []*speedybox.Packet) runOutput {
	t.Helper()
	defer p.Close()
	out := runOutput{}
	for i, pkt := range pkts {
		if _, err := p.Process(pkt); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		out.drops = append(out.drops, pkt.Dropped())
		out.outs = append(out.outs, append([]byte(nil), pkt.Data()...))
	}
	return out
}

// TestRandomChainsCrossVariantEquivalence is the repository's
// strongest integration property: for random chains and random traces,
// the baseline chain, SpeedyBox-on-BESS, SpeedyBox-on-ONVM, and both
// ablation modes all produce byte-identical packet streams and drop
// decisions.
func TestRandomChainsCrossVariantEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration property test")
	}
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{
				Seed: int64(trial), Flows: 15 + rng.Intn(25),
				AlertFraction: 0.15, LogFraction: 0.15,
				UDPFraction: 0.3,
				Interleave:  true,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Chain builders must create fresh NF instances per
			// variant; rebuild with the same sub-seed.
			chainSeed := rng.Int63()
			mkChain := func() []speedybox.NF {
				return randomChain(t, rand.New(rand.NewSource(chainSeed)), 3)
			}

			variants := []struct {
				name  string
				build func() (speedybox.Platform, error)
			}{
				{"bess-baseline", func() (speedybox.Platform, error) {
					return speedybox.NewBESS(mkChain(), speedybox.BaselineOptions())
				}},
				{"bess-sbox", func() (speedybox.Platform, error) {
					return speedybox.NewBESS(mkChain(), speedybox.DefaultOptions())
				}},
				{"bess-ha-only", func() (speedybox.Platform, error) {
					return speedybox.NewBESS(mkChain(), speedybox.Options{
						EnableSpeedyBox: true, ConsolidateHeaders: true, ParallelSF: false,
					})
				}},
				{"onvm-baseline", func() (speedybox.Platform, error) {
					return speedybox.NewONVM(mkChain(), speedybox.BaselineOptions())
				}},
				{"onvm-sbox", func() (speedybox.Platform, error) {
					return speedybox.NewONVM(mkChain(), speedybox.DefaultOptions())
				}},
			}
			var reference runOutput
			for vi, v := range variants {
				p, err := v.build()
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				got := runThrough(t, p, tr.Packets())
				if vi == 0 {
					reference = got
					continue
				}
				for i := range reference.drops {
					if reference.drops[i] != got.drops[i] {
						t.Fatalf("%s: packet %d drop decision differs from baseline", v.name, i)
					}
					if !bytes.Equal(reference.outs[i], got.outs[i]) {
						t.Fatalf("%s: packet %d bytes differ from baseline", v.name, i)
					}
				}
			}
		})
	}
}

// TestIdleExpiryUnderTraffic drives idle-rule GC through the public
// engine surface while traffic is flowing.
func TestIdleExpiryUnderTraffic(t *testing.T) {
	mon, err := speedybox.NewMonitor("mon")
	if err != nil {
		t.Fatal(err)
	}
	p, err := speedybox.NewBESS([]speedybox.NF{mon}, speedybox.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	mk := func(sport uint16) *speedybox.Packet {
		pkt, err := speedybox.BuildPacket(speedybox.PacketSpec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
			SrcPort: sport, DstPort: 53, Proto: 17, Payload: []byte("q"),
		})
		if err != nil {
			t.Fatal(err)
		}
		return pkt
	}
	// 30 one-packet UDP flows, then one busy flow.
	for i := 0; i < 30; i++ {
		if _, err := p.Process(mk(uint16(2000 + i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := p.Process(mk(9999)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Engine().Global().Len(); got != 31 {
		t.Fatalf("rules before expiry = %d", got)
	}
	expired := p.Engine().ExpireIdle(35)
	if expired != 30 {
		t.Errorf("expired = %d, want the 30 idle flows", expired)
	}
	if got := p.Engine().Global().Len(); got != 1 {
		t.Errorf("rules after expiry = %d, want 1", got)
	}
	// The busy flow still fast-paths.
	pkt := mk(9999)
	if _, err := p.Process(pkt); err != nil {
		t.Fatal(err)
	}
	if p.Engine().Stats().FastPath == 0 {
		t.Error("busy flow lost its rule")
	}
}
