// VPN tunnel segment: the §V-B encap/decap stack elimination in
// action. An ingress gateway adds an AH header to every packet, an IDS
// and a monitor process the tunneled traffic, and an egress gateway
// removes the header. On the original path every packet pays the
// push/pop (plus two checksum refreshes); SpeedyBox's consolidation
// recognizes the matched encap/decap pair, cancels both, and the fast
// path touches no headers at all — while the packet output stays
// byte-identical.
package main

import (
	"bytes"
	"fmt"
	"log"

	speedybox "github.com/fastpathnfv/speedybox"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildChain() ([]speedybox.NF, error) {
	enc, err := speedybox.NewVPNGateway(speedybox.VPNConfig{
		Name: "vpn-ingress", Mode: speedybox.VPNEncap, SPIBase: 0x1000,
	})
	if err != nil {
		return nil, err
	}
	ids, err := speedybox.NewSnort("snort", speedybox.DefaultSnortRules())
	if err != nil {
		return nil, err
	}
	mon, err := speedybox.NewMonitor("monitor")
	if err != nil {
		return nil, err
	}
	dec, err := speedybox.NewVPNGateway(speedybox.VPNConfig{
		Name: "vpn-egress", Mode: speedybox.VPNDecap,
	})
	if err != nil {
		return nil, err
	}
	return []speedybox.NF{enc, ids, mon, dec}, nil
}

func run() error {
	tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{
		Seed: 11, Flows: 100, Interleave: true,
	})
	if err != nil {
		return err
	}

	type result struct {
		label  string
		cycles float64
		outs   [][]byte
	}
	var results []result
	for _, mode := range []struct {
		label string
		opts  speedybox.Options
	}{
		{"original chain", speedybox.BaselineOptions()},
		{"with SpeedyBox", speedybox.DefaultOptions()},
	} {
		chain, err := buildChain()
		if err != nil {
			return err
		}
		p, err := speedybox.NewBESS(chain, mode.opts)
		if err != nil {
			return err
		}
		pkts := tr.Packets()
		var cycles uint64
		var outs [][]byte
		for _, pkt := range pkts {
			m, err := p.Process(pkt)
			if err != nil {
				_ = p.Close()
				return err
			}
			cycles += m.WorkCycles
			outs = append(outs, append([]byte(nil), pkt.Data()...))
		}
		if mode.opts.EnableSpeedyBox {
			fmt.Printf("consolidated Global MAT sample:\n%s\n", sampleRules(p, 3))
		}
		if err := p.Close(); err != nil {
			return err
		}
		results = append(results, result{
			label:  mode.label,
			cycles: float64(cycles) / float64(len(pkts)),
			outs:   outs,
		})
	}

	for _, r := range results {
		fmt.Printf("%-16s %.0f cycles/packet\n", r.label, r.cycles)
	}
	for i := range results[0].outs {
		if !bytes.Equal(results[0].outs[i], results[1].outs[i]) {
			return fmt.Errorf("packet %d differs between paths", i)
		}
	}
	fmt.Println("\nall packet outputs byte-identical; matched encap/decap pair fully eliminated")
	return nil
}

func sampleRules(p speedybox.Platform, n int) string {
	dump := p.Engine().Global().Dump()
	out := ""
	for i, line := range bytes.Split([]byte(dump), []byte("\n")) {
		if i >= n || len(line) == 0 {
			break
		}
		out += "  " + string(line) + "\n"
	}
	return out
}
