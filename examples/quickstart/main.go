// Quickstart: build the paper's motivating service chain
// (NAT -> Load Balancer -> Monitor -> Firewall, §II-A), push a
// synthetic datacenter trace through it on the BESS platform model,
// and compare the original chain against SpeedyBox.
package main

import (
	"fmt"
	"log"

	speedybox "github.com/fastpathnfv/speedybox"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildChain() ([]speedybox.NF, error) {
	nat, err := speedybox.NewMazuNAT(speedybox.MazuNATConfig{
		Name:           "nat",
		InternalPrefix: [4]byte{10, 0, 0, 0},
		InternalBits:   8,
		ExternalIP:     [4]byte{198, 51, 100, 1},
	})
	if err != nil {
		return nil, err
	}
	lb, err := speedybox.NewMaglev(speedybox.MaglevConfig{
		Name: "lb",
		Backends: []speedybox.MaglevBackend{
			{Name: "web-1", IP: [4]byte{192, 168, 1, 10}, Port: 8080},
			{Name: "web-2", IP: [4]byte{192, 168, 1, 11}, Port: 8080},
			{Name: "web-3", IP: [4]byte{192, 168, 1, 12}, Port: 8080},
		},
	})
	if err != nil {
		return nil, err
	}
	mon, err := speedybox.NewMonitor("monitor")
	if err != nil {
		return nil, err
	}
	fw, err := speedybox.NewIPFilter(speedybox.IPFilterConfig{
		Name:  "firewall",
		Rules: speedybox.PadIPFilterRules(nil, 100),
	})
	if err != nil {
		return nil, err
	}
	return []speedybox.NF{nat, lb, mon, fw}, nil
}

func run() error {
	tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{
		Seed: 42, Flows: 200, Interleave: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d flows, %d packets\n\n", len(tr.Flows), tr.Len())

	for _, mode := range []struct {
		label string
		opts  speedybox.Options
	}{
		{"original chain", speedybox.BaselineOptions()},
		{"with SpeedyBox", speedybox.DefaultOptions()},
	} {
		chain, err := buildChain()
		if err != nil {
			return err
		}
		p, err := speedybox.NewBESS(chain, mode.opts)
		if err != nil {
			return err
		}
		res, err := speedybox.Run(p, tr.Packets())
		if cerr := p.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("%-16s rate %.3f Mpps, mean latency %.3f µs\n",
			mode.label, res.RateMpps(), res.MeanLatencyMicros())
		fmt.Printf("%-16s slow path %d pkts, fast path %d pkts, %d consolidations\n\n",
			"", res.Stats.SlowPath, res.Stats.FastPath, res.Stats.Consolidations)
	}
	return nil
}
