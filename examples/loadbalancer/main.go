// Load balancer failover: reproduce the paper's Maglev event walk-
// through (§V-A and §VII-C2). A flow is pinned to a backend via
// consistent hashing; mid-stream the backend fails, the registered
// Event Table entry fires, the flow's consolidated modify(DIP) action
// is rewritten, and every later packet goes to the new backend — while
// the packets keep flowing on the fast path.
package main

import (
	"fmt"
	"log"

	speedybox "github.com/fastpathnfv/speedybox"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	backends := []speedybox.MaglevBackend{
		{Name: "backend-0", IP: [4]byte{192, 168, 9, 1}, Port: 80},
		{Name: "backend-1", IP: [4]byte{192, 168, 9, 2}, Port: 80},
	}
	lb, err := speedybox.NewMaglev(speedybox.MaglevConfig{
		Name: "maglev", Backends: backends,
	})
	if err != nil {
		return err
	}
	p, err := speedybox.NewBESS([]speedybox.NF{lb}, speedybox.DefaultOptions())
	if err != nil {
		return err
	}
	defer p.Close()

	mkPkt := func(i int) (*speedybox.Packet, error) {
		return speedybox.BuildPacket(speedybox.PacketSpec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{100, 0, 0, 9},
			SrcPort: 7777, DstPort: 80, Proto: 6,
			TCPFlags: 0x10, // ACK: established data packets
			Seq:      uint32(i),
			Payload:  []byte(fmt.Sprintf("request %d", i)),
		})
	}

	var firstBackend [4]byte
	for i := 1; i <= 10; i++ {
		if i == 6 {
			// The pinned backend fails between packets 5 and 6.
			for idx, b := range backends {
				if b.IP == firstBackend {
					fmt.Printf("--- backend %s fails ---\n", b.Name)
					if err := lb.FailBackend(idx); err != nil {
						return err
					}
				}
			}
		}
		pkt, err := mkPkt(i)
		if err != nil {
			return err
		}
		if _, err := p.Process(pkt); err != nil {
			return err
		}
		if i == 1 {
			firstBackend = pkt.DstIP()
		}
		d := pkt.DstIP()
		fmt.Printf("packet %2d -> %d.%d.%d.%d\n", i, d[0], d[1], d[2], d[3])
	}
	fmt.Printf("\nreroutes performed by the Event Table: %d\n", lb.Rerouted())
	fmt.Printf("engine: %+v\n", p.Engine().Stats())
	return nil
}
