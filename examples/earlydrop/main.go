// Early packet drop: the Table III scenario. A chain of three
// firewalls where the last one drops everything — on the original
// path every packet wastes two full NF traversals before dying; with
// SpeedyBox the consolidated rule drops subsequent packets at the
// head of the chain, and upstream state (the monitor's counters) still
// evolves exactly as before.
package main

import (
	"fmt"
	"log"

	speedybox "github.com/fastpathnfv/speedybox"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildChain() ([]speedybox.NF, error) {
	mon, err := speedybox.NewMonitor("monitor")
	if err != nil {
		return nil, err
	}
	fw1, err := speedybox.NewIPFilter(speedybox.IPFilterConfig{
		Name: "fw-forward-1", Rules: speedybox.PadIPFilterRules(nil, 100),
	})
	if err != nil {
		return nil, err
	}
	fw2, err := speedybox.NewIPFilter(speedybox.IPFilterConfig{
		Name: "fw-deny", Rules: speedybox.PadIPFilterRules(nil, 100), DefaultDeny: true,
	})
	if err != nil {
		return nil, err
	}
	return []speedybox.NF{mon, fw1, fw2}, nil
}

func run() error {
	tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{
		Seed: 3, Flows: 100, UDPFraction: 1.0, Interleave: true,
	})
	if err != nil {
		return err
	}

	for _, mode := range []struct {
		label string
		opts  speedybox.Options
	}{
		{"original chain", speedybox.BaselineOptions()},
		{"with SpeedyBox", speedybox.DefaultOptions()},
	} {
		chain, err := buildChain()
		if err != nil {
			return err
		}
		mon := chain[0].(*speedybox.Monitor)
		p, err := speedybox.NewBESS(chain, mode.opts)
		if err != nil {
			return err
		}
		res, err := speedybox.Run(p, tr.Packets())
		if cerr := p.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		var meanCycles float64
		for _, c := range res.WorkCycles {
			meanCycles += float64(c)
		}
		meanCycles /= float64(len(res.WorkCycles))
		fmt.Printf("%-16s dropped %d/%d packets, mean %.0f cycles/packet\n",
			mode.label, res.Drops, res.Packets, meanCycles)
		fmt.Printf("%-16s monitor still counted %d packets (state equivalence)\n\n",
			"", mon.Totals().Packets)
	}
	return nil
}
