// DoS mitigation: the paper's Event Table walkthrough (Figure 3),
// end to end. A DoS Prevention NF counts TCP SYN flags per flow on
// both paths (directly on the slow path, via its recorded state
// function on the fast path). When a flow's SYN count crosses the
// threshold, the registered event fires, the Event Table replaces the
// flow's forward action with drop in its Local MAT, the Global MAT
// reconsolidates — and the very next packet of the flood is dropped at
// the head of the chain while well-behaved flows keep flowing.
package main

import (
	"fmt"
	"log"

	speedybox "github.com/fastpathnfv/speedybox"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	defender, err := speedybox.NewDoSDefender(speedybox.DoSDefenderConfig{
		Name:         "dos-prevention",
		SYNThreshold: 5,
	})
	if err != nil {
		return err
	}
	mon, err := speedybox.NewMonitor("monitor")
	if err != nil {
		return err
	}
	p, err := speedybox.NewBESS([]speedybox.NF{defender, mon}, speedybox.DefaultOptions())
	if err != nil {
		return err
	}
	defer p.Close()

	mk := func(srcPort uint16, syn bool, seq int) (*speedybox.Packet, error) {
		flags := uint8(0x10) // ACK
		if syn {
			// A SYN-flood source replays SYNs mid-connection; the
			// classifier treats each as a handshake packet, the
			// defender counts every one.
			flags = 0x02
		}
		return speedybox.BuildPacket(speedybox.PacketSpec{
			SrcIP: [4]byte{203, 0, 113, 66}, DstIP: [4]byte{10, 0, 0, 80},
			SrcPort: srcPort, DstPort: 80, Proto: 6,
			TCPFlags: flags, Seq: uint32(seq),
			Payload: []byte("x"),
		})
	}

	// The attacker: data packets interleaved with repeated SYNs.
	fmt.Println("attacker flow (SYN flood, threshold 5):")
	dropped := 0
	for i := 1; i <= 16; i++ {
		pkt, err := mk(31337, i%2 == 1, i)
		if err != nil {
			return err
		}
		if _, err := p.Process(pkt); err != nil {
			return err
		}
		status := "forwarded"
		if pkt.Dropped() {
			status = "DROPPED"
			dropped++
		}
		fmt.Printf("  packet %2d (%s): %s\n", i, flagName(i%2 == 1), status)
	}

	// A legitimate flow is untouched.
	fmt.Println("\nlegitimate flow:")
	for i := 1; i <= 4; i++ {
		pkt, err := mk(40000, false, i)
		if err != nil {
			return err
		}
		if _, err := p.Process(pkt); err != nil {
			return err
		}
		if pkt.Dropped() {
			return fmt.Errorf("legitimate packet %d dropped", i)
		}
	}
	fmt.Println("  all forwarded")

	st := p.Engine().Stats()
	fmt.Printf("\nevents fired: %d, packets dropped: %d\n", st.EventsFired, dropped)
	if st.EventsFired == 0 && dropped == 0 {
		return fmt.Errorf("mitigation never engaged")
	}
	return nil
}

func flagName(syn bool) string {
	if syn {
		return "SYN"
	}
	return "ACK"
}
