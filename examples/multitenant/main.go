// Multi-tenant edge PoP: three service chains (web IDS, VoIP gateway,
// bulk rate limiting) share one Monitor instance, a first-match policy
// classifier routes flows by destination port and tags them with a
// tenant, and per-tenant admission quotas keep one tenant's rule and
// event appetite from starving the others. The traffic is adversarial
// — a SYN flood aimed at the web chain and elephant flows on the bulk
// chain — and the demo checks that consolidation changes nothing
// observable: same drops, same shared-monitor counters, zero drops
// under flood, and quota denials confined to the tenant that earned
// them.
//
// The embedded topo.json is the same file `chainsim -topo` accepts:
//
//	go run ./cmd/chainsim -topo examples/multitenant/topo.json -synflood 400
package main

import (
	_ "embed"
	"fmt"
	"log"

	speedybox "github.com/fastpathnfv/speedybox"
)

//go:embed topo.json
var topoJSON []byte

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// traffic returns a fresh copy of the merged adversarial trace: one
// sub-trace per service port, interleaved round-robin so the chains
// compete for the fast path concurrently. The web stream carries the
// SYN flood; the bulk stream is elephant-heavy.
func traffic() ([]*speedybox.Packet, error) {
	cfgs := []speedybox.AdversarialTraceConfig{
		{Config: speedybox.TraceConfig{Seed: 1, Flows: 200, DstPort: 80, Interleave: true},
			SYNFloodFlows: 400, SYNFloodAt: 0.5},
		{Config: speedybox.TraceConfig{Seed: 2, Flows: 120, DstPort: 5060, Interleave: true}},
		{Config: speedybox.TraceConfig{Seed: 3, Flows: 80, DstPort: 9000, Interleave: true},
			ElephantFraction: 0.25},
	}
	var streams [][]*speedybox.Packet
	for _, cfg := range cfgs {
		tr, err := speedybox.GenerateAdversarialTrace(cfg)
		if err != nil {
			return nil, err
		}
		streams = append(streams, tr.Packets())
	}
	var out []*speedybox.Packet
	for k := 0; ; k++ {
		emitted := false
		for _, s := range streams {
			if k < len(s) {
				out = append(out, s[k])
				emitted = true
			}
		}
		if !emitted {
			return out, nil
		}
	}
}

func run() error {
	spec, err := speedybox.ParseTopology(topoJSON)
	if err != nil {
		return err
	}

	type outcome struct {
		label    string
		drops    int
		counters speedybox.MonitorCounters
		latency  float64
		rate     float64
	}
	var outcomes []outcome
	var sbox *speedybox.Topology

	for _, mode := range []struct {
		label string
		opts  speedybox.Options
	}{
		{"baseline", speedybox.BaselineOptions()},
		{"w/ SBox", speedybox.DefaultOptions()},
	} {
		tp, err := speedybox.BuildTopology(spec, speedybox.TopologyBuildConfig{Options: mode.opts})
		if err != nil {
			return err
		}
		pkts, err := traffic()
		if err != nil {
			return err
		}
		res, err := tp.RunBatch(pkts, 32)
		if err != nil {
			return err
		}
		mon := tp.NF("mon").(*speedybox.Monitor)
		outcomes = append(outcomes, outcome{
			label:    mode.label,
			drops:    res.Drops,
			counters: mon.Totals(),
			latency:  res.MeanLatencyMicros(),
			rate:     res.RateMpps(),
		})
		if mode.label == "w/ SBox" {
			sbox = tp // report per-chain/per-tenant accounting below
		} else if err := tp.Close(); err != nil {
			return err
		}
	}
	defer func() { _ = sbox.Close() }()

	fmt.Println("variant     latency(µs)  rate(Mpps)  drops  shared-mon pkts")
	for _, o := range outcomes {
		fmt.Printf("%-10s  %11.3f  %10.3f  %5d  %15d\n",
			o.label, o.latency, o.rate, o.drops, o.counters.Packets)
	}

	fmt.Println("\nper-chain accounting (w/ SBox):")
	for i := 0; i < sbox.NumChains(); i++ {
		c := sbox.Chain(i)
		st := sbox.Engine(i).Stats()
		fmt.Printf("  %-5s weight=%d packets=%d fastpath=%d events=%d degraded=%d\n",
			c.Name, c.Weight, st.Packets, st.FastPath, st.EventsFired, st.DegradedPackets)
	}
	adm := sbox.Admission()
	fmt.Println("per-tenant admission (w/ SBox):")
	for _, ten := range spec.Tenants {
		fmt.Printf("  tenant %d: rules=%d events=%d rule-denied=%d event-denied=%d\n",
			ten.ID, adm.RulesHeld(ten.ID), adm.EventsHeld(ten.ID),
			adm.RuleDenials(ten.ID), adm.EventDenials(ten.ID))
	}

	// Equivalence and isolation checks.
	a, b := outcomes[0], outcomes[1]
	if a.drops != b.drops || a.counters != b.counters {
		return fmt.Errorf("equivalence violated between %q and %q", a.label, b.label)
	}
	if b.drops != 0 {
		return fmt.Errorf("SYN flood caused %d drops", b.drops)
	}
	if adm.RuleDenials(2) != 0 {
		return fmt.Errorf("unlimited tenant 2 saw %d rule denials", adm.RuleDenials(2))
	}
	fmt.Println("\nVerdicts and shared-monitor counters identical with and without")
	fmt.Println("SpeedyBox; flood absorbed with zero drops; quota denials confined")
	fmt.Println("to the tenants that exceeded their declared quotas.")
	return nil
}
