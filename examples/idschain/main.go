// IDS pipeline: the Figure 6 chain (Snort IDS followed by a Monitor)
// on both platform models. Snort's payload inspection is a READ-class
// state function and the Monitor's counting is IGNORE-class, so per
// Table I the consolidated fast path runs them in parallel — while the
// IDS logs and per-flow counters stay byte-identical to the original
// chain.
package main

import (
	"fmt"
	"log"

	speedybox "github.com/fastpathnfv/speedybox"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{
		Seed: 7, Flows: 150,
		AlertFraction: 0.1, LogFraction: 0.15,
		Interleave: true,
	})
	if err != nil {
		return err
	}

	type outcome struct {
		label    string
		alerts   int
		counters speedybox.MonitorCounters
		latency  float64
		rate     float64
	}
	var outcomes []outcome

	for _, platformKind := range []string{"BESS", "OpenNetVM"} {
		for _, mode := range []struct {
			label string
			opts  speedybox.Options
		}{
			{platformKind, speedybox.BaselineOptions()},
			{platformKind + " w/ SBox", speedybox.DefaultOptions()},
		} {
			ids, err := speedybox.NewSnort("snort", speedybox.DefaultSnortRules())
			if err != nil {
				return err
			}
			mon, err := speedybox.NewMonitor("monitor")
			if err != nil {
				return err
			}
			chain := []speedybox.NF{ids, mon}
			var p speedybox.Platform
			if platformKind == "BESS" {
				p, err = speedybox.NewBESS(chain, mode.opts)
			} else {
				p, err = speedybox.NewONVM(chain, mode.opts)
			}
			if err != nil {
				return err
			}
			res, err := speedybox.Run(p, tr.Packets())
			if cerr := p.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			outcomes = append(outcomes, outcome{
				label:    mode.label,
				alerts:   len(ids.Logs()),
				counters: mon.Totals(),
				latency:  res.MeanLatencyMicros(),
				rate:     res.RateMpps(),
			})
		}
	}

	fmt.Println("variant             latency(µs)  rate(Mpps)  IDS logs  monitored pkts")
	for _, o := range outcomes {
		fmt.Printf("%-18s  %10.3f  %10.3f  %8d  %14d\n",
			o.label, o.latency, o.rate, o.alerts, o.counters.Packets)
	}
	// Equivalence: IDS logs and counters must match within a platform.
	for i := 0; i+1 < len(outcomes); i += 2 {
		a, b := outcomes[i], outcomes[i+1]
		if a.alerts != b.alerts || a.counters != b.counters {
			return fmt.Errorf("equivalence violated between %q and %q", a.label, b.label)
		}
	}
	fmt.Println("\nIDS logs and per-flow counters identical with and without SpeedyBox.")
	return nil
}
