// Daemon quickstart: boot the SpeedyBox daemon in-process, drive its
// HTTP/JSON admin API like an operator would — scrape status, apply a
// live chain plan while traffic flows, take a checkpoint — and shut it
// down cleanly. The same API is served by the standalone binary:
//
//	go run ./cmd/speedyboxd -addr 127.0.0.1:7070
//	curl -s -X POST 127.0.0.1:7070/v1/plan \
//	  -d '{"op":"insert","pos":2,"nf":{"type":"monitor","name":"mon-b"}}'
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	speedybox "github.com/fastpathnfv/speedybox"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Zero-value config is runnable: the paper's Chain 1 on the BESS
	// model, an ephemeral admin port, and the built-in traffic pump
	// replaying a deterministic trace window after window.
	d, err := speedybox.NewDaemon(speedybox.DaemonConfig{
		Pump: speedybox.DaemonPumpConfig{Flows: 150, Gap: 2 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	if err := d.Start(); err != nil {
		return err
	}
	fmt.Println("admin API:", d.URL())

	// Let a few trace windows flow, then look at the control plane's
	// view of the data path.
	time.Sleep(200 * time.Millisecond)
	status, err := getJSON(d.URL() + "/v1/status")
	if err != nil {
		return err
	}
	fmt.Printf("state=%v chain=%v epoch=%v\n",
		status["state"], status["chain"], status["epoch"])
	stats := status["stats"].(map[string]any)
	fmt.Printf("packets=%v fast_path=%v dropped=%v\n",
		stats["packets"], stats["fast_path"], stats["dropped"])

	// Live reconfiguration over HTTP: insert a second monitor while
	// the pump keeps replaying traffic. The epoch bump invalidates
	// consolidated rules; affected flows transparently re-record.
	plan := `{"op":"insert","pos":2,"nf":{"type":"monitor","name":"mon-b"}}`
	applied, err := postJSON(d.URL()+"/v1/plan", []byte(plan))
	if err != nil {
		return err
	}
	fmt.Printf("plan applied: epoch=%v chain=%v\n", applied["epoch"], applied["chain"])

	// A failing request returns a machine-readable code, never just a
	// message to pattern-match.
	_, err = postJSON(d.URL()+"/v1/plan", []byte(`{"op":"remove","name":"nosuch"}`))
	fmt.Println("bad plan rejected:", err)

	// Checkpoint at a packet boundary: the daemon gates the pump,
	// snapshots the engine and resumes. Inline returns the bytes (and
	// the durable WAL) for POST /v1/restore on a fresh daemon.
	cp, err := postJSON(d.URL()+"/v1/checkpoint", []byte(`{"inline":true}`))
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint: epoch=%v bytes=%v wal_seq=%v\n",
		cp["epoch"], cp["bytes"], cp["wal_seq"])

	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("clean shutdown, state:", d.State())
	return nil
}

// getJSON fetches and decodes one API response.
func getJSON(url string) (map[string]any, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return decode(resp)
}

// postJSON posts a body and decodes the response, surfacing the API's
// {code, message} envelope as an error on non-2xx statuses.
func postJSON(url string, body []byte) (map[string]any, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return decode(resp)
}

func decode(resp *http.Response) (map[string]any, error) {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("HTTP %d: code=%v message=%v",
			resp.StatusCode, m["code"], m["message"])
	}
	return m, nil
}
