package speedybox

import (
	"github.com/fastpathnfv/speedybox/internal/nf/dosdefender"
	"github.com/fastpathnfv/speedybox/internal/nf/gateway"
	"github.com/fastpathnfv/speedybox/internal/nf/ipfilter"
	"github.com/fastpathnfv/speedybox/internal/nf/maglev"
	"github.com/fastpathnfv/speedybox/internal/nf/mazunat"
	"github.com/fastpathnfv/speedybox/internal/nf/monitor"
	"github.com/fastpathnfv/speedybox/internal/nf/ratelimiter"
	"github.com/fastpathnfv/speedybox/internal/nf/snort"
	"github.com/fastpathnfv/speedybox/internal/nf/synthetic"
	"github.com/fastpathnfv/speedybox/internal/nf/vpn"
)

// Stock network functions: the five the paper evaluates (§VI-C) plus
// three extras. Each integrates with SpeedyBox through the Ctx
// instrumentation APIs in a handful of lines, mirroring the small
// added-LOC counts of the paper's Table II.

// Snort IDS types.
type (
	// Snort is the IDS NF: per-flow rule assignment on the initial
	// packet, content/regex payload inspection, Pass/Alert/Log rules.
	Snort = snort.Snort
	// SnortRule is one inspection rule.
	SnortRule = snort.Rule
	// SnortRuleType is the Pass/Alert/Log action.
	SnortRuleType = snort.RuleType
	// SnortLogEntry is one IDS log record.
	SnortLogEntry = snort.LogEntry
)

// Snort rule types.
const (
	SnortPass  = snort.TypePass
	SnortAlert = snort.TypeAlert
	SnortLog   = snort.TypeLog
)

// NewSnort builds a Snort IDS over a rule list.
func NewSnort(name string, rules []SnortRule) (*Snort, error) {
	return snort.New(name, rules)
}

// DefaultSnortRules returns the representative rule set used by the
// evaluation (all three rule types, content and regex matching).
func DefaultSnortRules() []SnortRule { return snort.DefaultRules() }

// ParseSnortRules parses a subset of the Snort rule language, e.g.
//
//	alert tcp any any -> any 80 (msg:"exploit"; content:"ATTACK"; sid:1001;)
//
// See the package documentation of internal/nf/snort for the supported
// subset.
func ParseSnortRules(text string) ([]SnortRule, error) { return snort.ParseRules(text) }

// Maglev load balancer types.
type (
	// Maglev is the consistent-hashing load balancer (Maglev §3.4
	// lookup tables, connection tracking, failover events).
	Maglev = maglev.Maglev
	// MaglevBackend is one load-balanced server.
	MaglevBackend = maglev.Backend
	// MaglevConfig configures the balancer.
	MaglevConfig = maglev.Config
)

// NewMaglev builds a Maglev load balancer.
func NewMaglev(cfg MaglevConfig) (*Maglev, error) { return maglev.New(cfg) }

// IPFilter firewall types.
type (
	// IPFilter is the linear-scan ACL firewall.
	IPFilter = ipfilter.Filter
	// IPFilterConfig configures it.
	IPFilterConfig = ipfilter.Config
	// IPFilterRule is one ACL entry.
	IPFilterRule = ipfilter.Rule
	// IPPrefix matches an address prefix.
	IPPrefix = ipfilter.Prefix
	// PortRange matches a port interval.
	PortRange = ipfilter.PortRange
)

// NewIPFilter builds an IPFilter firewall.
func NewIPFilter(cfg IPFilterConfig) (*IPFilter, error) { return ipfilter.New(cfg) }

// PadIPFilterRules appends never-matching rules to reach a target ACL
// length, controlling the linear-scan cost in benchmarks.
func PadIPFilterRules(rules []IPFilterRule, n int) []IPFilterRule {
	return ipfilter.PadRules(rules, n)
}

// Monitor types.
type (
	// Monitor maintains per-flow packet/byte counters.
	Monitor = monitor.Monitor
	// MonitorCounters is one flow's statistics.
	MonitorCounters = monitor.Counters
)

// NewMonitor builds a Monitor.
func NewMonitor(name string) (*Monitor, error) { return monitor.New(name) }

// MazuNAT types.
type (
	// MazuNAT translates IP and port for flows (Click mazu-nat
	// equivalent).
	MazuNAT = mazunat.NAT
	// MazuNATConfig configures it.
	MazuNATConfig = mazunat.Config
	// NATMapping is one active translation.
	NATMapping = mazunat.Mapping
)

// NewMazuNAT builds a MazuNAT.
func NewMazuNAT(cfg MazuNATConfig) (*MazuNAT, error) { return mazunat.New(cfg) }

// VPN gateway types (exercises Encap/Decap consolidation, §V-B).
type (
	// VPNGateway adds or removes AH headers.
	VPNGateway = vpn.Gateway
	// VPNConfig configures it.
	VPNConfig = vpn.Config
	// VPNMode selects encap or decap.
	VPNMode = vpn.Mode
)

// VPN modes.
const (
	VPNEncap = vpn.ModeEncap
	VPNDecap = vpn.ModeDecap
)

// NewVPNGateway builds a VPN gateway.
func NewVPNGateway(cfg VPNConfig) (*VPNGateway, error) { return vpn.New(cfg) }

// DoS defender types (the Event Table walkthrough of Figure 3).
type (
	// DoSDefender counts per-flow SYNs and blocks flows crossing a
	// threshold via a runtime event.
	DoSDefender = dosdefender.Defender
	// DoSDefenderConfig configures it.
	DoSDefenderConfig = dosdefender.Config
)

// NewDoSDefender builds a DoS defender.
func NewDoSDefender(cfg DoSDefenderConfig) (*DoSDefender, error) {
	return dosdefender.New(cfg)
}

// Media gateway types (the remaining §IV-A NF category: DSCP marking,
// next-hop rewrite, TTL handling — a multi-field Modify consolidation).
type (
	// MediaGateway classifies flows into service classes and marks
	// packets accordingly.
	MediaGateway = gateway.Gateway
	// MediaGatewayConfig configures it.
	MediaGatewayConfig = gateway.Config
	// ServiceClass is a gateway traffic class.
	ServiceClass = gateway.Class
)

// Service classes.
const (
	ClassBestEffort = gateway.ClassBestEffort
	ClassVoice      = gateway.ClassVoice
	ClassVideo      = gateway.ClassVideo
)

// NewMediaGateway builds a media gateway.
func NewMediaGateway(cfg MediaGatewayConfig) (*MediaGateway, error) {
	return gateway.New(cfg)
}

// Rate limiter types (the §IV-A2 shared-state case: one quota counter
// shared by every flow of a source, with shared-condition events).
type (
	// RateLimiter enforces per-source packet quotas.
	RateLimiter = ratelimiter.Limiter
	// RateLimiterConfig configures it.
	RateLimiterConfig = ratelimiter.Config
)

// NewRateLimiter builds a rate limiter.
func NewRateLimiter(cfg RateLimiterConfig) (*RateLimiter, error) {
	return ratelimiter.New(cfg)
}

// Synthetic NF types (the §VII-A2 microbenchmark NF).
type (
	// SyntheticNF has no header action and one configurable state
	// function.
	SyntheticNF = synthetic.NF
	// SyntheticConfig configures it.
	SyntheticConfig = synthetic.Config
)

// NewSyntheticNF builds a synthetic NF.
func NewSyntheticNF(cfg SyntheticConfig) (*SyntheticNF, error) {
	return synthetic.New(cfg)
}
