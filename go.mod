module github.com/fastpathnfv/speedybox

go 1.22
