package speedybox_test

import (
	"bytes"
	"testing"

	speedybox "github.com/fastpathnfv/speedybox"
)

// chain1 builds the paper's motivating chain through the public API
// only: NAT -> Load Balancer -> Monitor -> Firewall (§II-A).
func chain1(t *testing.T) []speedybox.NF {
	t.Helper()
	nat, err := speedybox.NewMazuNAT(speedybox.MazuNATConfig{
		Name:           "nat",
		InternalPrefix: [4]byte{10, 0, 0, 0},
		InternalBits:   8,
		ExternalIP:     [4]byte{198, 51, 100, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := speedybox.NewMaglev(speedybox.MaglevConfig{
		Name: "lb",
		Backends: []speedybox.MaglevBackend{
			{Name: "a", IP: [4]byte{192, 168, 0, 1}, Port: 80},
			{Name: "b", IP: [4]byte{192, 168, 0, 2}, Port: 80},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := speedybox.NewMonitor("mon")
	if err != nil {
		t.Fatal(err)
	}
	fw, err := speedybox.NewIPFilter(speedybox.IPFilterConfig{
		Name:  "fw",
		Rules: speedybox.PadIPFilterRules(nil, 50),
	})
	if err != nil {
		t.Fatal(err)
	}
	return []speedybox.NF{nat, lb, mon, fw}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	for _, mk := range []struct {
		name  string
		build func([]speedybox.NF, speedybox.Options) (speedybox.Platform, error)
	}{
		{"BESS", speedybox.NewBESS},
		{"ONVM", speedybox.NewONVM},
	} {
		t.Run(mk.name, func(t *testing.T) {
			p, err := mk.build(chain1(t), speedybox.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := p.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}()
			tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{Seed: 5, Flows: 25, Interleave: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := speedybox.Run(p, tr.Packets())
			if err != nil {
				t.Fatal(err)
			}
			if res.Packets != tr.Len() {
				t.Errorf("processed %d of %d", res.Packets, tr.Len())
			}
			if res.Stats.FastPath == 0 {
				t.Error("fast path never used")
			}
			if res.RateMpps() <= 0 {
				t.Error("no rate")
			}
		})
	}
}

func TestPublicAPIEquivalence(t *testing.T) {
	tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{Seed: 9, Flows: 20, Interleave: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts speedybox.Options) []*speedybox.Packet {
		p, err := speedybox.NewBESS(chain1(t), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		pkts := tr.Packets()
		if _, err := speedybox.Run(p, pkts); err != nil {
			t.Fatal(err)
		}
		return pkts
	}
	base := run(speedybox.BaselineOptions())
	sbox := run(speedybox.DefaultOptions())
	for i := range base {
		if base[i].Dropped() != sbox[i].Dropped() || !bytes.Equal(base[i].Data(), sbox[i].Data()) {
			t.Fatalf("packet %d differs between baseline and SpeedyBox", i)
		}
	}
}

func TestPublicAPISpeedup(t *testing.T) {
	tr, err := speedybox.GenerateTrace(speedybox.TraceConfig{Seed: 2, Flows: 30, Interleave: true})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(opts speedybox.Options) float64 {
		p, err := speedybox.NewBESS(chain1(t), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		res, err := speedybox.Run(p, tr.Packets())
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatencyMicros()
	}
	base := mean(speedybox.BaselineOptions())
	sbox := mean(speedybox.DefaultOptions())
	if sbox >= base {
		t.Errorf("SpeedyBox latency %.3fµs not below baseline %.3fµs", sbox, base)
	}
}

func TestBuildPacket(t *testing.T) {
	p, err := speedybox.BuildPacket(speedybox.PacketSpec{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 1, DstPort: 2, Payload: []byte("hi"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() == 0 || !p.VerifyChecksums() {
		t.Error("BuildPacket produced a bad frame")
	}
}

func TestDefaultModelExposed(t *testing.T) {
	m := speedybox.DefaultModel()
	if m.FreqHz != 2.0e9 {
		t.Errorf("FreqHz = %g", m.FreqHz)
	}
	// The model is a copy-by-pointer builder: two calls give
	// independent models so callers can tweak safely.
	m2 := speedybox.DefaultModel()
	m.Parse = 1
	if m2.Parse == 1 {
		t.Error("DefaultModel returns shared state")
	}
}

func TestDefaultSnortRulesCoverAllTypes(t *testing.T) {
	rules := speedybox.DefaultSnortRules()
	seen := map[speedybox.SnortRuleType]bool{}
	for _, r := range rules {
		seen[r.Type] = true
	}
	for _, want := range []speedybox.SnortRuleType{speedybox.SnortPass, speedybox.SnortAlert, speedybox.SnortLog} {
		if !seen[want] {
			t.Errorf("default rules missing type %v", want)
		}
	}
}
